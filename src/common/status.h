#ifndef GRAFT_COMMON_STATUS_H_
#define GRAFT_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace graft {

/// Error categories used across the library. Follows the RocksDB/Arrow idiom:
/// every fallible library operation returns a Status (or Result<T>), and
/// exceptions are reserved for the user-Compute() boundary where capturing
/// them is itself a feature of the debugger.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kOutOfRange = 5,
  kFailedPrecondition = 6,
  kAborted = 7,
  kUnimplemented = 8,
  kInternal = 9,
  /// A transient/injected infrastructure failure (worker killed, store write
  /// faulted). Unlike kAborted — a deterministic user-compute failure that
  /// would recur on replay — kUnavailable is the retryable class the
  /// JobRunner recovers from via checkpoints.
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("OK", "IOError"...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to return by value: the OK
/// status carries no allocation; error statuses carry a code and a message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Usable in any function that
/// returns Status or Result<T>.
#define GRAFT_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::graft::Status _graft_status = (expr);         \
    if (!_graft_status.ok()) return _graft_status;  \
  } while (false)

}  // namespace graft

#endif  // GRAFT_COMMON_STATUS_H_
