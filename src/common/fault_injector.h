#ifndef GRAFT_COMMON_FAULT_INJECTOR_H_
#define GRAFT_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace graft {

/// Where a fault can be injected into a run. The engine consults the
/// injector at the start of each worker's compute slice and each partition's
/// delivery slice; the FaultInjectingTraceStore decorator consults it on
/// every Append/Flush (so capture-path and checkpoint-path writes can be
/// failed the same way a flaky filesystem would fail them).
enum class FaultSite : uint8_t {
  kWorkerCompute = 0,  // kill a worker's vertex phase
  kDelivery = 1,       // abort a partition's message delivery
  kStoreAppend = 2,    // fail a TraceStore::Append
  kStoreFlush = 3,     // fail a TraceStore::Flush
  kLogAppend = 4,      // fail an outbox-log append (delta checkpoint mode)
  kLogReplay = 5,      // fail an outbox-log replay during recovery
};

std::string_view FaultSiteName(FaultSite site);

/// One armed fault: fires when the run reaches `site` at a matching
/// (superstep, partition) coordinate, at most `hits` times. A -1 superstep
/// or partition is a wildcard. Store sites are consulted without a partition
/// coordinate (the store does not know which worker is appending), so armed
/// store faults should leave `partition` at -1.
struct FaultPoint {
  FaultSite site = FaultSite::kWorkerCompute;
  int64_t superstep = -1;  // -1 = any superstep
  int partition = -1;      // -1 = any partition
  int hits = 1;            // times this point may fire before disarming
};

/// One fired fault, for post-run inspection and the recovery report.
struct FaultEvent {
  FaultSite site = FaultSite::kWorkerCompute;
  int64_t superstep = 0;
  int partition = -1;
};

/// Deterministic fault injector (DESIGN.md "Fault tolerance & recovery").
/// Faults are armed as explicit (site, superstep, partition, hits) points —
/// or probabilistically from a seed — before the run; the engine publishes
/// the current superstep so that store-level consultations (which happen
/// outside the engine) key on the same coordinates.
///
/// Determinism: explicit points depend only on the run's coordinates, never
/// on thread timing. Probabilistic arming draws its verdict from
/// Rng::ForStream(seed, superstep, site/partition), so the *set* of firing
/// coordinates is a pure function of the seed — independent of scheduling —
/// and bounded by a total budget so a recovered run can make progress.
///
/// Thread-safe; consultations are mutex-guarded (fault checks are one per
/// phase per worker plus one per store call — cold next to the hot path).
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms an explicit fault point.
  void Arm(const FaultPoint& point);

  /// Arms a seeded probabilistic fault: `site` fires at any (superstep,
  /// partition) coordinate where the seed-derived stream says so, with
  /// probability `probability` per coordinate, at most `budget` times total.
  void ArmSeeded(FaultSite site, double probability, uint64_t seed,
                 int budget = 1);

  /// Published by the engine at the top of every superstep so store-level
  /// consultations key on the right coordinate.
  void set_current_superstep(int64_t superstep) {
    current_superstep_.store(superstep, std::memory_order_relaxed);
  }
  int64_t current_superstep() const {
    return current_superstep_.load(std::memory_order_relaxed);
  }

  /// True when an armed fault matches (site, current superstep, partition);
  /// decrements the matching point's hit budget and records a FaultEvent.
  /// Pass partition=-1 from call sites without a partition coordinate.
  bool ShouldFail(FaultSite site, int partition = -1);

  /// All faults that fired so far, in firing order.
  std::vector<FaultEvent> events() const;
  uint64_t fired_count() const;

  /// Disarms everything and clears the event log (the superstep coordinate
  /// is left alone).
  void Reset();

 private:
  struct SeededFault {
    FaultSite site;
    double probability;
    uint64_t seed;
    int budget;
  };

  mutable std::mutex mutex_;
  std::vector<FaultPoint> points_;
  std::vector<SeededFault> seeded_;
  std::vector<FaultEvent> events_;
  std::atomic<int64_t> current_superstep_{0};
};

}  // namespace graft

#endif  // GRAFT_COMMON_FAULT_INJECTOR_H_
