#include "common/binary_io.h"

namespace graft {

void BinaryWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<char>(v));
}

void BinaryWriter::WriteSignedVarint(int64_t v) { WriteVarint(ZigzagEncode(v)); }

void BinaryWriter::WriteFixed32(uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  buffer_.append(bytes, 4);
}

void BinaryWriter::WriteFixed64(uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  buffer_.append(bytes, 8);
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  WriteFixed64(bits);
}

void BinaryWriter::WriteFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  WriteFixed32(bits);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status BinaryReader::CheckAvailable(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("binary read past end of buffer (need " +
                              std::to_string(n) + " bytes at offset " +
                              std::to_string(pos_) + ", size " +
                              std::to_string(data_.size()) + ")");
  }
  return Status::OK();
}

Status BinaryReader::Skip(size_t n) {
  GRAFT_RETURN_NOT_OK(CheckAvailable(n));
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  GRAFT_RETURN_NOT_OK(CheckAvailable(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<bool> BinaryReader::ReadBool() {
  GRAFT_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  return v != 0;
}

Result<uint64_t> BinaryReader::ReadVarint() {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    GRAFT_RETURN_NOT_OK(CheckAvailable(1));
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 64 || (shift == 63 && (byte & 0x7f) > 1)) {
      return Status::OutOfRange("varint overflows 64 bits");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return result;
}

Result<int64_t> BinaryReader::ReadSignedVarint() {
  GRAFT_ASSIGN_OR_RETURN(uint64_t v, ReadVarint());
  return ZigzagDecode(v);
}

Result<uint32_t> BinaryReader::ReadFixed32() {
  GRAFT_RETURN_NOT_OK(CheckAvailable(4));
  uint32_t v;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::ReadFixed64() {
  GRAFT_RETURN_NOT_OK(CheckAvailable(8));
  uint64_t v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  GRAFT_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<float> BinaryReader::ReadFloat() {
  GRAFT_ASSIGN_OR_RETURN(uint32_t bits, ReadFixed32());
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  GRAFT_ASSIGN_OR_RETURN(uint64_t size, ReadVarint());
  GRAFT_RETURN_NOT_OK(CheckAvailable(size));
  std::string s(data_.substr(pos_, size));
  pos_ += size;
  return s;
}

}  // namespace graft
