#ifndef GRAFT_COMMON_BINARY_IO_H_
#define GRAFT_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace graft {

/// Append-only binary encoder used for vertex/master trace records and the
/// binary graph format. Integers use LEB128 varints (signed values are
/// zigzag-encoded) so that the trace files Graft writes stay small — the
/// paper stresses that captured traces are "often in the kilobytes".
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteVarint(uint64_t v);
  void WriteSignedVarint(int64_t v);
  void WriteFixed32(uint32_t v);
  void WriteFixed64(uint64_t v);
  void WriteDouble(double v);
  void WriteFloat(float v);
  /// Length-prefixed byte string.
  void WriteString(std::string_view s);
  /// Raw bytes, no length prefix.
  void WriteRaw(const void* data, size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  std::string buffer_;
};

/// Decoder over a byte span; every read is bounds-checked and returns a
/// Status/Result so corrupt trace files surface as errors, never UB.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<bool> ReadBool();
  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadSignedVarint();
  Result<uint32_t> ReadFixed32();
  Result<uint64_t> ReadFixed64();
  Result<double> ReadDouble();
  Result<float> ReadFloat();
  Result<std::string> ReadString();

  /// Advances past `n` bytes without decoding them.
  Status Skip(size_t n);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status CheckAvailable(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// Zigzag mapping for signed varints.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace graft

#endif  // GRAFT_COMMON_BINARY_IO_H_
