#ifndef GRAFT_COMMON_LOGGING_H_
#define GRAFT_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace graft {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped. Default: Info.
/// Overridable via the GRAFT_LOG_LEVEL environment variable (0-4).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses a GRAFT_LOG_LEVEL-style value ("0".."4"). Returns false and
/// leaves `*level` untouched for null/empty/non-numeric/out-of-range input.
bool ParseLogLevel(const char* text, LogLevel* level);

/// Re-reads GRAFT_LOG_LEVEL and applies it (or the Info default when the
/// variable is unset/invalid). Returns the resulting level. Normally the
/// variable is read once, lazily; this hook exists for tests and for hosts
/// that mutate their environment after startup.
LogLevel ReloadLogLevelFromEnv();

namespace internal {

/// Stream-style log sink. Collects the message and emits it (with level,
/// timestamp, and source location) on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define GRAFT_LOG_ENABLED(level) ((level) >= ::graft::GetLogLevel())

#define GRAFT_LOG(severity)                                              \
  if (!GRAFT_LOG_ENABLED(::graft::LogLevel::k##severity)) {              \
  } else                                                                 \
    ::graft::internal::LogMessage(::graft::LogLevel::k##severity,        \
                                  __FILE__, __LINE__)                    \
        .stream()

/// Invariant check that is active in all build modes. On failure logs the
/// condition and aborts; use for internal invariants, not user input.
#define GRAFT_CHECK(condition)                                          \
  if (condition) {                                                      \
  } else                                                                \
    ::graft::internal::LogMessage(::graft::LogLevel::kFatal, __FILE__,  \
                                  __LINE__)                             \
            .stream()                                                   \
        << "Check failed: " #condition " "

#define GRAFT_CHECK_OK(expr)                                            \
  do {                                                                  \
    ::graft::Status _graft_check_status = (expr);                       \
    GRAFT_CHECK(_graft_check_status.ok())                               \
        << _graft_check_status.ToString();                              \
  } while (false)

#define GRAFT_DCHECK(condition) assert(condition)

}  // namespace graft

#endif  // GRAFT_COMMON_LOGGING_H_
