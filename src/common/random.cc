#include "common/random.h"

#include <cassert>

namespace graft {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::ForStream(uint64_t seed, uint64_t stream_a, uint64_t stream_b) {
  uint64_t s = Mix64(seed ^ Mix64(stream_a));
  s = Mix64(s ^ Mix64(stream_b ^ 0xda942042e4dd58b5ULL));
  return Rng(s);
}

uint64_t Rng::Next64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace graft
