#ifndef GRAFT_COMMON_RESULT_H_
#define GRAFT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace graft {

/// A value-or-error holder in the style of arrow::Result. A Result is either
/// OK and holds a T, or holds a non-OK Status. Accessing the value of an
/// errored Result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors arrow::Result ergonomics so
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing from an OK
  /// status is a programming error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, else `fallback`.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// status to the caller.
#define GRAFT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define GRAFT_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define GRAFT_ASSIGN_OR_RETURN_NAME(x, y) GRAFT_ASSIGN_OR_RETURN_CONCAT(x, y)

#define GRAFT_ASSIGN_OR_RETURN(lhs, expr)                                    \
  GRAFT_ASSIGN_OR_RETURN_IMPL(                                               \
      GRAFT_ASSIGN_OR_RETURN_NAME(_graft_result_, __COUNTER__), lhs, (expr))

}  // namespace graft

#endif  // GRAFT_COMMON_RESULT_H_
