#ifndef GRAFT_COMMON_STRING_UTIL_H_
#define GRAFT_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace graft {

/// Splits on a single delimiter character. Empty tokens are kept unless
/// `skip_empty` is true.
std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter,
                                          bool skip_empty = false);

/// Splits on arbitrary whitespace runs; never yields empty tokens.
std::vector<std::string_view> SplitWhitespace(std::string_view input);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view input);

/// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// 12345678 -> "12,345,678" (for paper-style table output).
std::string WithThousandsSeparators(uint64_t value);

/// 1234.5 -> "1.23 KB" etc.
std::string HumanBytes(uint64_t bytes);

/// Parses a signed integer; the full string must be consumed.
bool ParseInt64(std::string_view s, int64_t* out);
/// Parses a double; the full string must be consumed.
bool ParseDouble(std::string_view s, double* out);

/// Truncates to `max_len` characters appending "..." when truncated.
std::string Ellipsize(std::string_view s, size_t max_len);

}  // namespace graft

#endif  // GRAFT_COMMON_STRING_UTIL_H_
