#ifndef GRAFT_COMMON_STOPWATCH_H_
#define GRAFT_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace graft {

/// Monotonic wall-clock timer for superstep timings and the Figure 7
/// overhead benchmark.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  int64_t ElapsedMillis() const { return ElapsedMicros() / 1000; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace graft

#endif  // GRAFT_COMMON_STOPWATCH_H_
