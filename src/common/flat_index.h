#ifndef GRAFT_COMMON_FLAT_INDEX_H_
#define GRAFT_COMMON_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace graft {

/// Insert-only open-addressing hash index from 64-bit keys to dense 32-bit
/// slot numbers. This is the engine's per-partition vertex-id -> vertex-slot
/// index: it sits on the per-message hot path (every routed message resolves
/// its target through it), so it is built for lookup cost, not generality —
/// linear probing over a flat power-of-two array of {key, slot} cells means
/// one cache line per probe instead of std::unordered_map's bucket-pointer
/// chase, and the hash is the same SplitMix64 finalizer the engine already
/// uses to pick the destination partition.
///
/// There is no erase: the engine never unmaps a vertex id (removal flips the
/// vertex's alive flag; the slot is reused on resurrection), which is what
/// lets the table skip tombstones entirely.
class FlatIndex {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  FlatIndex() { Rehash(kMinCells); }

  /// The hash this table probes with — exposed so batched callers can
  /// compute it once, Prefetch() with it, and probe with FindHashed().
  static uint64_t Hash(int64_t key) {
    return Mix64(static_cast<uint64_t>(key));
  }

  /// Returns the slot mapped to `key`, or kNotFound.
  uint32_t Find(int64_t key) const { return FindHashed(key, Hash(key)); }

  /// Find() with the Hash(key) already in hand.
  uint32_t FindHashed(int64_t key, uint64_t hash) const {
    size_t i = hash & mask_;
    while (true) {
      const Cell& c = cells_[i];
      if (c.slot == kNotFound) return kNotFound;
      if (c.key == key) return c.slot;
      i = (i + 1) & mask_;
    }
  }

  /// Pulls the home cell of `hash` toward the cache ahead of a FindHashed.
  /// Batching sends and prefetching their index cells overlaps the cache
  /// misses that a lookup-per-send path would serialize.
  void Prefetch(uint64_t hash) const {
    __builtin_prefetch(&cells_[hash & mask_]);
  }

  /// Maps `key` to `slot` if the key is absent; either way returns the slot
  /// the key is mapped to and reports whether this call inserted it.
  uint32_t InsertOrFind(int64_t key, uint32_t slot, bool* inserted) {
    GRAFT_CHECK(slot != kNotFound) << "slot value reserved as empty marker";
    // Max load 2/3: linear probing wants headroom or clusters get long.
    if ((size_ + 1) * 3 > cells_.size() * 2) Rehash(cells_.size() * 2);
    size_t i = Mix64(static_cast<uint64_t>(key)) & mask_;
    while (true) {
      Cell& c = cells_[i];
      if (c.slot == kNotFound) {
        c.key = key;
        c.slot = slot;
        ++size_;
        *inserted = true;
        return slot;
      }
      if (c.key == key) {
        *inserted = false;
        return c.slot;
      }
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_; }

 private:
  struct Cell {
    int64_t key = 0;
    uint32_t slot = kNotFound;
  };

  static constexpr size_t kMinCells = 16;  // power of two

  void Rehash(size_t new_cells) {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(new_cells, Cell{});
    mask_ = new_cells - 1;
    for (const Cell& c : old) {
      if (c.slot == kNotFound) continue;
      size_t i = Mix64(static_cast<uint64_t>(c.key)) & mask_;
      while (cells_[i].slot != kNotFound) i = (i + 1) & mask_;
      cells_[i] = c;
    }
  }

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace graft

#endif  // GRAFT_COMMON_FLAT_INDEX_H_
