#include "common/json_parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/string_util.h"

namespace graft {

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

// Defined at namespace scope (not anonymous) so the header's friend
// declaration grants it access to JsonValue's internals.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}
  Result<std::unique_ptr<JsonValue>> Parse() {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<JsonValue> value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", message.c_str(), pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    pos_ += keyword.size();
    return true;
  }

  Result<std::unique_ptr<JsonValue>> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    auto value = std::make_unique<JsonValue>();
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        GRAFT_ASSIGN_OR_RETURN(value->string_, ParseString());
        value->type_ = JsonValue::Type::kString;
        return value;
      }
      case 't':
        if (!ConsumeKeyword("true")) return Error("bad literal");
        value->type_ = JsonValue::Type::kBool;
        value->bool_ = true;
        return value;
      case 'f':
        if (!ConsumeKeyword("false")) return Error("bad literal");
        value->type_ = JsonValue::Type::kBool;
        value->bool_ = false;
        return value;
      case 'n':
        if (!ConsumeKeyword("null")) return Error("bad literal");
        value->type_ = JsonValue::Type::kNull;
        return value;
      default:
        return ParseNumber();
    }
  }

  Result<std::unique_ptr<JsonValue>> ParseObject(int depth) {
    ++pos_;  // '{'
    auto value = std::make_unique<JsonValue>();
    value->type_ = JsonValue::Type::kObject;
    SkipSpace();
    if (Consume('}')) return value;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      GRAFT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<JsonValue> member,
                             ParseValue(depth + 1));
      value->members_[std::move(key)] = std::move(member);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}'");
    }
  }

  Result<std::unique_ptr<JsonValue>> ParseArray(int depth) {
    ++pos_;  // '['
    auto value = std::make_unique<JsonValue>();
    value->type_ = JsonValue::Type::kArray;
    SkipSpace();
    if (Consume(']')) return value;
    while (true) {
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<JsonValue> item,
                             ParseValue(depth + 1));
      value->items_.push_back(std::move(item));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          GRAFT_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Surrogate pair: combine; unpaired surrogates are an error.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            GRAFT_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<std::unique_ptr<JsonValue>> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("expected value");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected fraction digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string literal(text_.substr(start, pos_ - start));
    auto value = std::make_unique<JsonValue>();
    value->type_ = JsonValue::Type::kNumber;
    value->number_ = std::strtod(literal.c_str(), nullptr);
    if (integral) {
      int64_t exact;
      if (ParseInt64(literal, &exact)) {
        value->int_ = exact;
        value->has_int_ = true;
      }
    }
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = members_.find(std::string(key));
  return it == members_.end() ? nullptr : it->second.get();
}

Result<std::string> JsonValue::GetString(std::string_view key,
                                         std::string_view fallback) const {
  const JsonValue* v = Get(key);
  if (v == nullptr) return std::string(fallback);
  if (!v->is_string()) {
    return Status::InvalidArgument("json: field '" + std::string(key) +
                                   "' must be a string");
  }
  return v->AsString();
}

Result<int64_t> JsonValue::GetInt(std::string_view key,
                                  int64_t fallback) const {
  const JsonValue* v = Get(key);
  if (v == nullptr) return fallback;
  std::optional<int64_t> exact = v->is_number() ? v->AsInt64() : std::nullopt;
  if (!exact.has_value()) {
    return Status::InvalidArgument("json: field '" + std::string(key) +
                                   "' must be an integer");
  }
  return *exact;
}

Result<double> JsonValue::GetDouble(std::string_view key,
                                    double fallback) const {
  const JsonValue* v = Get(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument("json: field '" + std::string(key) +
                                   "' must be a number");
  }
  return v->AsDouble();
}

Result<bool> JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Get(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument("json: field '" + std::string(key) +
                                   "' must be a boolean");
  }
  return v->AsBool();
}

Result<std::unique_ptr<JsonValue>> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace graft
