#include "common/parallel.h"

#include <thread>
#include <vector>

#include "common/logging.h"

namespace graft {

void RunOnWorkers(int num_workers, const std::function<void(int)>& fn) {
  GRAFT_CHECK(num_workers >= 1) << "need at least one worker";
  if (num_workers == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers) - 1);
  for (int w = 1; w < num_workers; ++w) {
    threads.emplace_back([&fn, w] { fn(w); });
  }
  fn(0);
  for (auto& t : threads) t.join();
}

ShardRange ComputeShardRange(size_t n, int num_shards, int shard) {
  GRAFT_CHECK(num_shards >= 1);
  GRAFT_CHECK(shard >= 0 && shard < num_shards);
  size_t base = n / static_cast<size_t>(num_shards);
  size_t extra = n % static_cast<size_t>(num_shards);
  size_t s = static_cast<size_t>(shard);
  size_t begin = s * base + (s < extra ? s : extra);
  size_t len = base + (s < extra ? 1 : 0);
  return ShardRange{begin, begin + len};
}

}  // namespace graft
