#include "common/parallel.h"

#include "common/logging.h"

namespace graft {

void RunOnWorkers(int num_workers, const std::function<void(int)>& fn) {
  GRAFT_CHECK(num_workers >= 1) << "need at least one worker";
  if (num_workers == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers) - 1);
  for (int w = 1; w < num_workers; ++w) {
    threads.emplace_back([&fn, w] { fn(w); });
  }
  fn(0);
  for (auto& t : threads) t.join();
}

WorkerPool::WorkerPool(int num_workers) : num_workers_(num_workers) {
  GRAFT_CHECK(num_workers >= 1) << "need at least one worker";
  threads_.reserve(static_cast<size_t>(num_workers_) - 1);
  for (int w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { ThreadLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Run(const std::function<void(int)>& fn) {
  if (num_workers_ == 1) {
    ++generation_;
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    GRAFT_CHECK(task_ == nullptr) << "WorkerPool::Run is not reentrant";
    task_ = &fn;
    remaining_ = num_workers_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);  // the caller is worker 0
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    task_ = nullptr;
  }
}

void WorkerPool::ThreadLoop(int worker_index) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || (generation_ != seen && task_); });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

ShardRange ComputeShardRange(size_t n, int num_shards, int shard) {
  GRAFT_CHECK(num_shards >= 1);
  GRAFT_CHECK(shard >= 0 && shard < num_shards);
  size_t base = n / static_cast<size_t>(num_shards);
  size_t extra = n % static_cast<size_t>(num_shards);
  size_t s = static_cast<size_t>(shard);
  size_t begin = s * base + (s < extra ? s : extra);
  size_t len = base + (s < extra ? 1 : 0);
  return ShardRange{begin, begin + len};
}

}  // namespace graft
