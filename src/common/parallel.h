#ifndef GRAFT_COMMON_PARALLEL_H_
#define GRAFT_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graft {

/// Runs fn(worker_index) on `num_workers` threads and joins them all.
/// Worker 0 runs on the calling thread. Spawns fresh threads per call — use
/// WorkerPool for anything repeated (the Pregel engine's superstep loop);
/// this remains for one-shot parallelism (graph generators).
void RunOnWorkers(int num_workers, const std::function<void(int)>& fn);

/// Persistent pool of `num_workers - 1` parked threads plus the caller,
/// executing BSP-style parallel phases: every Run(fn) invokes fn(w) for all
/// w in [0, num_workers) and returns only when every worker finished (a
/// reusable barrier). Between phases the threads park on a condition
/// variable, so a job with thousands of supersteps pays thread creation
/// once, not twice per superstep.
///
/// Contract: one phase at a time, driven from a single caller thread; fn
/// must not throw (workers run it outside any try/catch — the engine
/// catches user exceptions inside its own worker body). Worker w of one
/// phase is executed by the same pool thread as worker w of the next, which
/// keeps any thread-affine caches warm across supersteps.
class WorkerPool {
 public:
  explicit WorkerPool(int num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Executes one parallel phase; blocks until all workers are done.
  void Run(const std::function<void(int)>& fn);

  /// Number of parallel phases executed so far. Together with the fixed
  /// thread count this is the observability evidence that the pool reuses
  /// threads: `generations()` grows per phase while the pool never spawns
  /// after construction.
  uint64_t generations() const { return generation_; }

 private:
  void ThreadLoop(int worker_index);

  const int num_workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;  // valid while a phase runs
  uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Splits [0, n) into `num_shards` contiguous ranges; returns the half-open
/// range [begin, end) of shard `shard`.
struct ShardRange {
  size_t begin;
  size_t end;
};
ShardRange ComputeShardRange(size_t n, int num_shards, int shard);

}  // namespace graft

#endif  // GRAFT_COMMON_PARALLEL_H_
