#ifndef GRAFT_COMMON_PARALLEL_H_
#define GRAFT_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace graft {

/// Runs fn(worker_index) on `num_workers` threads and joins them all.
/// Worker 0 runs on the calling thread. Used by the Pregel engine for the
/// per-superstep vertex phase and by graph generators.
void RunOnWorkers(int num_workers, const std::function<void(int)>& fn);

/// Splits [0, n) into `num_shards` contiguous ranges; returns the half-open
/// range [begin, end) of shard `shard`.
struct ShardRange {
  size_t begin;
  size_t end;
};
ShardRange ComputeShardRange(size_t n, int num_shards, int shard);

}  // namespace graft

#endif  // GRAFT_COMMON_PARALLEL_H_
