#include "common/fault_injector.h"

#include "common/random.h"

namespace graft {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kWorkerCompute:
      return "worker-compute";
    case FaultSite::kDelivery:
      return "delivery";
    case FaultSite::kStoreAppend:
      return "store-append";
    case FaultSite::kStoreFlush:
      return "store-flush";
    case FaultSite::kLogAppend:
      return "log-append";
    case FaultSite::kLogReplay:
      return "log-replay";
  }
  return "?";
}

void FaultInjector::Arm(const FaultPoint& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.push_back(point);
}

void FaultInjector::ArmSeeded(FaultSite site, double probability,
                              uint64_t seed, int budget) {
  std::lock_guard<std::mutex> lock(mutex_);
  seeded_.push_back(SeededFault{site, probability, seed, budget});
}

bool FaultInjector::ShouldFail(FaultSite site, int partition) {
  const int64_t superstep = current_superstep_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  for (FaultPoint& p : points_) {
    if (p.hits <= 0 || p.site != site) continue;
    if (p.superstep != -1 && p.superstep != superstep) continue;
    if (p.partition != -1 && p.partition != partition) continue;
    --p.hits;
    events_.push_back(FaultEvent{site, superstep, partition});
    return true;
  }
  for (SeededFault& s : seeded_) {
    if (s.budget <= 0 || s.site != site) continue;
    // The verdict for a coordinate is a pure function of (seed, superstep,
    // site, partition) — independent of thread timing.
    Rng rng = Rng::ForStream(
        s.seed, static_cast<uint64_t>(superstep),
        (static_cast<uint64_t>(static_cast<uint8_t>(site)) << 32) ^
            static_cast<uint64_t>(static_cast<uint32_t>(partition + 1)));
    if (rng.NextDouble() < s.probability) {
      --s.budget;
      events_.push_back(FaultEvent{site, superstep, partition});
      return true;
    }
  }
  return false;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

uint64_t FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  seeded_.clear();
  events_.clear();
}

}  // namespace graft
