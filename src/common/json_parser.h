#ifndef GRAFT_COMMON_JSON_PARSER_H_
#define GRAFT_COMMON_JSON_PARSER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace graft {

/// Parsed JSON value tree — the input side of the debug service's HTTP API
/// (POST /jobs job specs). Counterpart of JsonWriter, which only emits.
///
/// Values are immutable after parsing; accessors are const and return
/// pointers into the tree (valid for the root's lifetime). Numbers are kept
/// as doubles plus an exact-int64 flag, which covers every field the job
/// spec schema uses.
class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  /// The exact integer value when the literal was integral and in range.
  std::optional<int64_t> AsInt64() const {
    if (!has_int_) return std::nullopt;
    return int_;
  }
  const std::string& AsString() const { return string_; }
  const std::vector<std::unique_ptr<JsonValue>>& items() const {
    return items_;
  }
  const std::map<std::string, std::unique_ptr<JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(std::string_view key) const;

  // -- schema-reading conveniences (all tolerate absent members) --

  /// Member string or `fallback` when absent; error when present but not a
  /// string.
  Result<std::string> GetString(std::string_view key,
                                std::string_view fallback) const;
  /// Member integer or `fallback`; error when present but not an integer.
  Result<int64_t> GetInt(std::string_view key, int64_t fallback) const;
  /// Member double or `fallback`; error when present but not a number.
  Result<double> GetDouble(std::string_view key, double fallback) const;
  /// Member bool or `fallback`; error when present but not a bool.
  Result<bool> GetBool(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  bool has_int_ = false;
  std::string string_;
  std::vector<std::unique_ptr<JsonValue>> items_;
  std::map<std::string, std::unique_ptr<JsonValue>> members_;
};

/// Parses one JSON document. Strict: rejects trailing garbage, unterminated
/// containers, bad escapes. Depth-limited so untrusted request bodies cannot
/// overflow the stack. `\uXXXX` escapes are decoded to UTF-8.
Result<std::unique_ptr<JsonValue>> ParseJson(std::string_view text);

}  // namespace graft

#endif  // GRAFT_COMMON_JSON_PARSER_H_
