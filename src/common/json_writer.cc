#include "common/json_writer.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace graft {

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  Context& top = stack_.back();
  if (top == Context::kArray) {
    if (has_elements_.back()) out_.push_back(',');
    has_elements_.back() = true;
  } else if (top == Context::kObjectAwaitValue) {
    top = Context::kObjectAwaitKey;
  } else {
    assert(false && "JSON value emitted where an object key was required");
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Context::kObjectAwaitKey);
  has_elements_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Context::kObjectAwaitKey);
  out_.push_back('}');
  stack_.pop_back();
  has_elements_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Context::kArray);
  has_elements_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Context::kArray);
  out_.push_back(']');
  stack_.pop_back();
  has_elements_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back() == Context::kObjectAwaitKey);
  if (has_elements_.back()) out_.push_back(',');
  has_elements_.back() = true;
  out_.push_back('"');
  out_ += Escape(key);
  out_ += "\":";
  stack_.back() = Context::kObjectAwaitValue;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.17g", value);
  } else {
    out_ += "null";  // JSON has no NaN/Inf literals.
  }
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  if (json.empty()) {
    Null();
    return;
  }
  BeforeValue();
  out_ += json;
}

void JsonWriter::KV(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}
void JsonWriter::KV(std::string_view key, const char* value) {
  Key(key);
  String(value);
}
void JsonWriter::KV(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}
void JsonWriter::KV(std::string_view key, uint64_t value) {
  Key(key);
  UInt(value);
}
void JsonWriter::KV(std::string_view key, double value) {
  Key(key);
  Double(value);
}
void JsonWriter::KV(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace graft
