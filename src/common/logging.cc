#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/status.h"

namespace graft {

namespace {

std::atomic<int> g_log_level{-1};

int ReadInitialLevel() {
  LogLevel level = LogLevel::kInfo;
  ParseLogLevel(std::getenv("GRAFT_LOG_LEVEL"), &level);
  return static_cast<int>(level);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?????";
}

std::mutex& OutputMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_log_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ReadInitialLevel();
    g_log_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool ParseLogLevel(const char* text, LogLevel* level) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;  // trailing junk
  if (v < 0 || v > 4) return false;
  *level = static_cast<LogLevel>(v);
  return true;
}

LogLevel ReloadLogLevelFromEnv() {
  int v = ReadInitialLevel();
  g_log_level.store(v, std::memory_order_relaxed);
  return static_cast<LogLevel>(v);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const char* base = std::strrchr(file_, '/');
  base = (base != nullptr) ? base + 1 : file_;
  auto now = std::chrono::system_clock::now().time_since_epoch();
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::fprintf(stderr, "[%s %lld.%03lld %s:%d] %s\n", LevelName(level_),
                 static_cast<long long>(ms / 1000),
                 static_cast<long long>(ms % 1000), base, line_,
                 stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace graft
