#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>

namespace graft {

std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter, bool skip_empty) {
  std::vector<std::string_view> result;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(delimiter, start);
    if (end == std::string_view::npos) end = input.size();
    std::string_view token = input.substr(start, end - start);
    if (!skip_empty || !token.empty()) result.push_back(token);
    if (end == input.size()) break;
    start = end + 1;
  }
  return result;
}

std::vector<std::string_view> SplitWhitespace(std::string_view input) {
  std::vector<std::string_view> result;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) result.push_back(input.substr(start, i - start));
  }
  return result;
}

std::string_view TrimString(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string WithThousandsSeparators(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) result.push_back(',');
    result.push_back(*it);
    ++count;
  }
  return std::string(result.rbegin(), result.rend());
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.2f %s", value, kUnits[unit]);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string Ellipsize(std::string_view s, size_t max_len) {
  if (s.size() <= max_len) return std::string(s);
  if (max_len <= 3) return std::string(s.substr(0, max_len));
  return std::string(s.substr(0, max_len - 3)) + "...";
}

}  // namespace graft
