#ifndef GRAFT_COMMON_RANDOM_H_
#define GRAFT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace graft {

/// SplitMix64: tiny, fast, statistically solid for our purposes, and —
/// critically for Graft — fully deterministic and serializable. The engine
/// hands every (job seed, superstep, vertex) a fresh Rng so that replaying a
/// captured vertex context reproduces the exact same random choices the
/// cluster run made (see DESIGN.md §1, "Deterministic replay").
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Derives a child generator deterministically; used to key RNGs by
  /// (seed, superstep, vertex id) without correlation between streams.
  static Rng ForStream(uint64_t seed, uint64_t stream_a, uint64_t stream_b);

  /// Next raw 64 random bits.
  uint64_t Next64();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  /// rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Current internal state; together with the constructor this makes the
  /// generator fully serializable into vertex traces.
  uint64_t state() const { return state_; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t state_;
};

/// Stateless 64-bit mix (the SplitMix64 finalizer); used for hash
/// partitioning and stream derivation.
uint64_t Mix64(uint64_t x);

}  // namespace graft

#endif  // GRAFT_COMMON_RANDOM_H_
