#ifndef GRAFT_PREGEL_MASTER_H_
#define GRAFT_PREGEL_MASTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "pregel/agg_value.h"

namespace graft {
namespace pregel {

/// Registration record for a named aggregator.
struct AggregatorSpec {
  AggregatorOp op = AggregatorOp::kSum;
  AggValue initial;
  /// Persistent aggregators carry their merged value across supersteps;
  /// regular ones reset to `initial` each superstep (Giraph semantics).
  bool persistent = false;
};

/// What MasterCompute::Compute() may touch. Implemented by the engine; the
/// Context Reproducer provides a mock for replaying captured master
/// contexts (§3.4 "Debugging Master.compute()").
class MasterContext {
 public:
  virtual ~MasterContext() = default;

  virtual int64_t superstep() const = 0;
  virtual int64_t total_num_vertices() const = 0;
  virtual int64_t total_num_edges() const = 0;

  /// Registers a named aggregator. Legal only from Initialize().
  virtual Status RegisterAggregator(const std::string& name,
                                    const AggregatorSpec& spec) = 0;

  /// Merged value from the previous superstep (possibly already overwritten
  /// by an earlier SetAggregated call this superstep).
  virtual AggValue GetAggregated(const std::string& name) const = 0;

  /// Overwrites the value that will be broadcast to vertices this
  /// superstep. The paper notes the most common master bug is setting the
  /// computation phase incorrectly here (§3.4).
  virtual Status SetAggregated(const std::string& name,
                               const AggValue& value) = 0;

  /// All aggregator values as currently visible — the master context Graft
  /// captures every superstep.
  virtual const std::map<std::string, AggValue>& VisibleAggregators()
      const = 0;

  /// Instructs the system to terminate after this call returns.
  virtual void HaltComputation() = 0;
  virtual bool IsHalted() const = 0;

  /// Deterministic per-superstep random stream for the master.
  virtual Rng& rng() = 0;
};

/// Optional master program, the GPS-introduced master.compute() (§2). Runs
/// at the beginning of every superstep, seeing aggregator values merged at
/// the end of the previous superstep.
class MasterCompute {
 public:
  virtual ~MasterCompute() = default;

  /// Called once before superstep 0; register aggregators here.
  virtual void Initialize(MasterContext& ctx) { (void)ctx; }

  virtual void Compute(MasterContext& ctx) = 0;
};

using MasterFactory = std::function<std::unique_ptr<MasterCompute>()>;

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_MASTER_H_
