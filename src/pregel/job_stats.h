#ifndef GRAFT_PREGEL_JOB_STATS_H_
#define GRAFT_PREGEL_JOB_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "obs/run_report.h"

namespace graft {
namespace pregel {

/// Why a job stopped.
enum class TerminationReason {
  kAllHalted,       // every vertex voted to halt and no messages in flight
  kMasterHalted,    // master.compute() called HaltComputation()
  kMaxSupersteps,   // Options::max_supersteps cap reached
  kComputeError,    // an exception escaped Compute() (job aborted)
};

std::string_view TerminationReasonName(TerminationReason reason);

/// Per-superstep execution record (feeds the GUI's global-data panel and the
/// Figure 7 harness).
struct SuperstepStats {
  int64_t superstep = 0;
  uint64_t active_vertices = 0;   // vertices that ran Compute()
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;  // sent to missing vertices (drop mode)
  uint64_t vertices_removed = 0;
  uint64_t edges_added = 0;
  uint64_t edges_removed = 0;
  double seconds = 0.0;
};

/// Whole-job summary returned by Engine::Run().
struct JobStats {
  TerminationReason termination = TerminationReason::kAllHalted;
  int64_t supersteps = 0;  // number of executed supersteps
  uint64_t total_messages = 0;
  uint64_t total_messages_dropped = 0;  // across all supersteps (drop mode)
  uint64_t final_vertices = 0;
  uint64_t final_edges = 0;
  double total_seconds = 0.0;
  std::vector<SuperstepStats> per_superstep;
  /// Per-worker x per-superstep phase timings and capture-overhead
  /// accounting for this run (machine-readable via ToJson /
  /// ToPrometheusText).
  obs::RunReport report;

  /// Slowest superstep wall time; 0 when no superstep completed.
  double MaxSuperstepSeconds() const {
    double max = 0.0;
    for (const SuperstepStats& ss : per_superstep) {
      max = std::max(max, ss.seconds);
    }
    return max;
  }

  std::string ToString() const {
    return StrFormat(
        "supersteps=%lld termination=%s messages=%s dropped=%s vertices=%s "
        "edges=%s time=%.3fs max_superstep=%.3fs",
        static_cast<long long>(supersteps),
        std::string(TerminationReasonName(termination)).c_str(),
        WithThousandsSeparators(total_messages).c_str(),
        WithThousandsSeparators(total_messages_dropped).c_str(),
        WithThousandsSeparators(final_vertices).c_str(),
        WithThousandsSeparators(final_edges).c_str(), total_seconds,
        MaxSuperstepSeconds());
  }
};

inline std::string_view TerminationReasonName(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kAllHalted:
      return "all-halted";
    case TerminationReason::kMasterHalted:
      return "master-halted";
    case TerminationReason::kMaxSupersteps:
      return "max-supersteps";
    case TerminationReason::kComputeError:
      return "compute-error";
  }
  return "?";
}

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_JOB_STATS_H_
