#ifndef GRAFT_PREGEL_COMPUTATION_H_
#define GRAFT_PREGEL_COMPUTATION_H_

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "pregel/compute_context.h"
#include "pregel/vertex.h"

namespace graft {
namespace pregel {

/// User-facing vertex program, the analogue of Giraph's Computation class
/// (the paper calls it vertex.compute(), §2). Subclass and implement
/// Compute(); it is called once per active vertex per superstep.
///
/// Compute() may throw: exceptions are a first-class debugging signal in
/// Graft (capture category 5, §3.1) — the instrumenter records the exception
/// with the vertex context before the job aborts.
///
/// Each worker thread owns its own Computation instance (mirroring Giraph's
/// per-thread computation objects), so implementations may keep scratch
/// state across Compute() calls within a worker without synchronizing —
/// though depending on such state undermines replay, as §7 of the paper
/// warns about "external data dependencies".
template <JobTraits Traits>
class Computation {
 public:
  using Message = typename Traits::Message;

  virtual ~Computation() = default;

  virtual void Compute(ComputeContext<Traits>& ctx, Vertex<Traits>& vertex,
                       const std::vector<Message>& messages) = 0;
};

/// Factory producing one Computation instance per worker thread.
template <JobTraits Traits>
using ComputationFactory =
    std::function<std::unique_ptr<Computation<Traits>>()>;

/// Error thrown by a vertex program. Any std::exception escaping Compute()
/// is captured; this subclass merely lets programs attach context cheaply.
class VertexComputeError : public std::runtime_error {
 public:
  explicit VertexComputeError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Internal control-flow exception for infrastructure failures discovered on
/// a worker thread (e.g. the Graft instrumenter's trace append failing). The
/// engine unwinds it into an engine-level abort carrying `status` — it is
/// NOT treated as a user compute error, so a retryable kUnavailable fault
/// stays retryable instead of being misreported as a vertex bug.
class WorkerAbortError : public std::exception {
 public:
  explicit WorkerAbortError(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_COMPUTATION_H_
