#ifndef GRAFT_PREGEL_COMPUTATION_H_
#define GRAFT_PREGEL_COMPUTATION_H_

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "pregel/compute_context.h"
#include "pregel/vertex.h"

namespace graft {
namespace pregel {

/// User-facing vertex program, the analogue of Giraph's Computation class
/// (the paper calls it vertex.compute(), §2). Subclass and implement
/// Compute(); it is called once per active vertex per superstep.
///
/// Compute() may throw: exceptions are a first-class debugging signal in
/// Graft (capture category 5, §3.1) — the instrumenter records the exception
/// with the vertex context before the job aborts.
///
/// Each worker thread owns its own Computation instance (mirroring Giraph's
/// per-thread computation objects), so implementations may keep scratch
/// state across Compute() calls within a worker without synchronizing —
/// though depending on such state undermines replay, as §7 of the paper
/// warns about "external data dependencies".
template <JobTraits Traits>
class Computation {
 public:
  using Message = typename Traits::Message;

  virtual ~Computation() = default;

  virtual void Compute(ComputeContext<Traits>& ctx, Vertex<Traits>& vertex,
                       const std::vector<Message>& messages) = 0;
};

/// Factory producing one Computation instance per worker thread.
template <JobTraits Traits>
using ComputationFactory =
    std::function<std::unique_ptr<Computation<Traits>>()>;

/// Error thrown by a vertex program. Any std::exception escaping Compute()
/// is captured; this subclass merely lets programs attach context cheaply.
class VertexComputeError : public std::runtime_error {
 public:
  explicit VertexComputeError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_COMPUTATION_H_
