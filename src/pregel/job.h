#ifndef GRAFT_PREGEL_JOB_H_
#define GRAFT_PREGEL_JOB_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/predicate.h"
#include "analysis/sanitizer.h"
#include "common/fault_injector.h"
#include "common/result.h"
#include "common/status.h"
#include "debug/capture_manager.h"
#include "debug/debug_config.h"
#include "debug/instrumented_computation.h"
#include "io/fault_injecting_trace_store.h"
#include "io/trace_block_cache.h"
#include "io/trace_sink.h"
#include "io/trace_store.h"
#include "obs/event_journal.h"
#include "obs/job_registry.h"
#include "obs/run_report.h"
#include "pregel/checkpoint.h"
#include "pregel/engine.h"

namespace graft {
namespace pregel {

/// Everything that defines one job run, in one named-field struct — the
/// single configuration surface for plain runs, debugged (Graft) runs, and
/// checkpointed/fault-injected runs (ISSUE 3: no loose positional config).
/// DESIGN.md documents the mapping from the old positional RunWithGraft
/// parameters onto these fields.
template <JobTraits Traits>
struct JobSpec {
  /// Engine-level knobs (workers, seed, combiner, job_id, metrics...). The
  /// `options.checkpoint` and `options.fault_injector` fields are overwritten
  /// by the top-level `checkpoint` / `fault_injector` fields below — set
  /// those instead.
  typename Engine<Traits>::Options options;

  /// The input graph. Consumed by RunJob (moved into the first engine).
  std::vector<Vertex<Traits>> vertices;

  /// Per-worker computation factory. Required.
  ComputationFactory<Traits> computation;
  /// Optional master.compute() factory.
  MasterFactory master;

  /// BSP contract analysis (DESIGN.md §9); `sanitizer.enabled = false` (the
  /// default) runs the job completely unchecked — no wrapping, no phase
  /// clock, no epoch stamps. Findings persist to `trace_store` when one is
  /// set, and always appear in the run report's analysis profile.
  analysis::SanitizerOptions sanitizer;

  /// Automated localization hooks (DESIGN.md §14). `breakpoint` is a
  /// predicate-DSL expression armed as a conditional trace breakpoint:
  /// every vertex.compute() call satisfying it is captured with
  /// kReasonBreakpoint and counted into JobRunSummary::breakpoint_hits —
  /// the minimizer's cheapest failure oracle. Requires `debug_config` +
  /// `trace_store`. Empty (the default) is unarmed: the instrumented path
  /// pays one null check per vertex and the uninstrumented path nothing.
  struct AnalysisOptions {
    std::string breakpoint;
  };
  AnalysisOptions analysis;

  /// Graft capture configuration; null runs the job without instrumentation.
  /// Requires `trace_store`.
  const debug::DebugConfig<Traits>* debug_config = nullptr;
  /// Where vertex/master traces land (under `options.job_id/`). Also the
  /// default checkpoint store.
  TraceStore* trace_store = nullptr;
  /// How capture appends reach the trace store: synchronous (default) or
  /// through the spooling background flusher (`capture_io.async = true`),
  /// which moves store writes off the BSP critical path. Trace bytes are
  /// identical either way; only the timing profile changes (DESIGN.md §10).
  TraceSinkOptions capture_io;

  /// Superstep checkpointing. `checkpoint.store` defaults to `trace_store`
  /// when unset; interval 0 disables checkpointing (and recovery).
  CheckpointOptions checkpoint;
  /// Optional deterministic fault injector: compute/delivery faults are
  /// checked by the engine, store faults by wrapping the configured stores
  /// in FaultInjectingTraceStore. Injector state (budgets, armed points)
  /// persists across recovery attempts, so a one-shot fault fires once.
  FaultInjector* fault_injector = nullptr;
  /// Recovery attempts after retryable (kUnavailable) failures before the
  /// failure is reported. Only meaningful with checkpointing enabled.
  int max_recovery_attempts = 3;

  /// Live telemetry plane (DESIGN.md §11): the structured event journal and
  /// the job-registry progress publishing the embedded HTTP server reads.
  struct TelemetryOptions {
    /// Enables the structured event journal for this run. The engine and the
    /// capture/checkpoint/recovery paths emit phase spans into it; off (the
    /// default) costs one pointer test per phase.
    bool journal = false;
    /// Retained-event capacity of the job-owned journal (ring; oldest events
    /// are dropped and counted once it wraps).
    size_t journal_capacity = 1 << 16;
    /// Use an externally owned journal instead of a job-owned one. Implies
    /// `journal` and ignores `journal_capacity`.
    obs::EventJournal* journal_sink = nullptr;
    /// Register the job and publish barrier-granularity progress snapshots
    /// so an attached TelemetryServer can serve /jobs/<id>/report and
    /// /jobs/<id>/events while the job runs.
    bool publish = false;
    /// Registry to publish into; null with `publish` uses
    /// obs::JobRegistry::Global(). Setting a registry implies `publish`.
    obs::JobRegistry* registry = nullptr;
  };
  TelemetryOptions telemetry;

  /// Invoked with the engine before/after each attempt's Run() — the hook
  /// for attaching extensions (InvariantChecker) and for reading final
  /// vertex values without re-running.
  std::function<void(Engine<Traits>&)> pre_run;
  std::function<void(Engine<Traits>&)> post_run;
};

/// Outcome of a RunJob call: job stats plus capture and recovery summaries.
/// The programmatic equivalent of the paper GUI's header bar, extended with
/// the fault-tolerance column.
struct JobRunSummary {
  JobStats stats;
  /// Non-OK when the job failed terminally: kAborted for a deterministic
  /// user-compute error (never retried — it would recur on replay), or the
  /// final kUnavailable when recovery attempts were exhausted or impossible.
  /// Traces written before the failure remain readable — that is the point
  /// of the debugger.
  Status job_status;
  uint64_t captures = 0;
  uint64_t violations = 0;
  uint64_t exceptions = 0;
  uint64_t dropped_by_capture_limit = 0;
  uint64_t trace_bytes = 0;
  /// vertex.compute() calls that satisfied the armed breakpoint predicate
  /// (0 when JobSpec::analysis.breakpoint is empty).
  uint64_t breakpoint_hits = 0;
  /// BSP contract violations recorded by the sanitizer (0 when disabled).
  uint64_t analysis_findings = 0;
  /// Engine runs executed (1 = no recovery happened).
  int attempts = 1;
  /// One entry per successful restore-from-checkpoint.
  std::vector<obs::RecoveryEvent> recoveries;
};

/// Runs a JobSpec to completion — the one code path behind Engine-style
/// plain runs, debug::RunWithGraft, and checkpoint recovery:
///
///   1. wraps the user computation with the Graft Instrumenter when a
///      DebugConfig is present, and the stores with fault decorators when an
///      injector is armed;
///   2. runs the engine; on a retryable (kUnavailable) failure, restores a
///      fresh engine from the latest committed checkpoint, prunes traces of
///      re-executed supersteps, rewinds the capture counters to their
///      checkpoint-time snapshot, and retries — up to max_recovery_attempts;
///   3. folds capture counters, checkpoint accounting, and recovery events
///      into the summary's JobStats::report.
///
/// Returns a Status error only for unusable specs and unrecoverable restore
/// corruption; job-level failures (compute errors, exhausted retries) are
/// reported in JobRunSummary::job_status with the partial evidence intact.
template <JobTraits Traits>
Result<JobRunSummary> RunJob(JobSpec<Traits> spec) {
  using EngineT = Engine<Traits>;
  if (spec.computation == nullptr) {
    return Status::InvalidArgument("JobSpec.computation is required");
  }
  if (spec.debug_config != nullptr && spec.trace_store == nullptr) {
    return Status::InvalidArgument(
        "JobSpec.debug_config requires JobSpec.trace_store");
  }
  // Conditional breakpoint: compile and type-check before anything runs, so
  // a bad predicate is a spec error, not a mid-job surprise.
  std::optional<analysis::Predicate> breakpoint;
  if (!spec.analysis.breakpoint.empty()) {
    if (spec.debug_config == nullptr) {
      return Status::InvalidArgument(
          "JobSpec.analysis.breakpoint requires JobSpec.debug_config and "
          "JobSpec.trace_store");
    }
    GRAFT_ASSIGN_OR_RETURN(
        analysis::Predicate compiled,
        analysis::Predicate::Compile(spec.analysis.breakpoint));
    GRAFT_RETURN_NOT_OK(compiled.CheckInputSupport(
        analysis::kHasNumericVertexValue<Traits>));
    breakpoint = std::move(compiled);
  }
  CheckpointOptions ckpt = spec.checkpoint;
  if (ckpt.store == nullptr) ckpt.store = spec.trace_store;
  if (spec.checkpoint.interval > 0 && ckpt.store == nullptr) {
    return Status::InvalidArgument(
        "JobSpec.checkpoint.interval > 0 requires a checkpoint store "
        "(checkpoint.store or trace_store)");
  }

  // Telemetry plane: resolve the event journal (external sink or job-owned)
  // and register the job for live progress publishing. `owned_journal` is
  // declared before the cleanup guard below so the guard's detach runs while
  // the journal is still alive.
  std::optional<obs::EventJournal> owned_journal;
  obs::EventJournal* journal = spec.telemetry.journal_sink;
  if (journal == nullptr && spec.telemetry.journal) {
    owned_journal.emplace(spec.telemetry.journal_capacity);
    journal = &*owned_journal;
  }
  std::shared_ptr<obs::JobEntry> telemetry_entry;
  if (spec.telemetry.publish || spec.telemetry.registry != nullptr) {
    obs::JobRegistry* registry = spec.telemetry.registry != nullptr
                                     ? spec.telemetry.registry
                                     : &obs::JobRegistry::Global();
    telemetry_entry = registry->Register(spec.options.job_id);
    if (journal != nullptr) telemetry_entry->AttachJournal(journal);
    telemetry_entry->MarkRunning();
  }
  // Guard: on every exit — including spec-error returns below — the entry
  // stops referencing the (possibly job-owned) journal before it dies.
  struct TelemetryGuard {
    std::shared_ptr<obs::JobEntry> entry;
    ~TelemetryGuard() {
      if (entry != nullptr) entry->DetachJournal();
    }
  } telemetry_guard{telemetry_entry};
  spec.capture_io.journal = journal;
  if (journal != nullptr) {
    journal->Instant("job.start", "job", -1, -1);
  }

  // Store wrapping: one fault decorator per distinct underlying store, so
  // injected store faults hit capture appends and checkpoint writes alike.
  std::optional<FaultInjectingTraceStore> faulty_traces;
  std::optional<FaultInjectingTraceStore> faulty_ckpt;
  TraceStore* trace_store = spec.trace_store;
  if (spec.fault_injector != nullptr && trace_store != nullptr) {
    faulty_traces.emplace(trace_store, spec.fault_injector);
    trace_store = &*faulty_traces;
  }
  if (ckpt.store != nullptr && spec.fault_injector != nullptr) {
    if (ckpt.store == spec.trace_store) {
      ckpt.store = trace_store;
    } else {
      faulty_ckpt.emplace(ckpt.store, spec.fault_injector);
      ckpt.store = &*faulty_ckpt;
    }
  }

  std::optional<debug::CaptureManager<Traits>> manager;
  std::unique_ptr<TraceSink> sink;
  if (spec.debug_config != nullptr) {
    sink = MakeTraceSink(trace_store, spec.capture_io);
    manager.emplace(trace_store, sink.get(), spec.debug_config,
                    spec.options.job_id, spec.options.num_workers);
    if (breakpoint) manager->ArmBreakpoint(&*breakpoint);
    manager->PrepareTargets(spec.vertices);
    // A stale manifest from an earlier run under this job id would satisfy
    // reads with the old index; captures start from a clean slate.
    GRAFT_RETURN_NOT_OK(
        trace_store->DeletePrefix(debug::ManifestFile(spec.options.job_id)));
    // Mirror in the shared block cache: cached blocks from an earlier run
    // under this job id (same store, same file names) must not satisfy reads
    // of the new run's traces. Keyed by the *user's* store — that is the one
    // DebugSession readers open (the fault decorator has its own uid).
    TraceBlockCache::Global().InvalidatePrefix(*spec.trace_store,
                                               spec.options.job_id + "/");
  }

  // BSP sanitizer: one shared instance across recovery attempts (like the
  // capture manager), plus the phase clock its aggregator checks read.
  std::optional<PhaseClock> phase_clock;
  std::optional<analysis::BspSanitizer<Traits>> bsp;
  if (spec.sanitizer.enabled) {
    phase_clock.emplace();
    bsp.emplace(spec.sanitizer, trace_store, spec.options.job_id,
                &*phase_clock, spec.computation, spec.options.combiner);
  }
  const MasterFactory master =
      bsp ? bsp->WrapMaster(spec.master) : spec.master;

  // Capture-counter snapshots keyed by checkpoint superstep: recovery
  // rewinds the (shared, cross-attempt) manager so re-executed captures are
  // not double-counted.
  std::map<int64_t, debug::CaptureCounters> snapshots;
  class SnapshotObserver final : public EngineT::SuperstepObserver {
   public:
    SnapshotObserver(debug::CaptureManager<Traits>* manager,
                     std::map<int64_t, debug::CaptureCounters>* snapshots)
        : manager_(manager), snapshots_(snapshots) {}
    void OnCheckpoint(int64_t superstep) override {
      if (manager_ != nullptr) {
        (*snapshots_)[superstep] = manager_->SnapshotCounters();
      }
    }

   private:
    debug::CaptureManager<Traits>* manager_;
    std::map<int64_t, debug::CaptureCounters>* snapshots_;
  };
  SnapshotObserver snapshot_observer(manager ? &*manager : nullptr,
                                     &snapshots);

  /// Captures the master context every superstep (§3.4: Graft does this
  /// automatically whenever the program has a master.compute()). A failed
  /// master-trace append aborts the run with the store's status instead of
  /// being logged and dropped.
  class MasterCaptureObserver final : public EngineT::SuperstepObserver {
   public:
    MasterCaptureObserver(debug::CaptureManager<Traits>* manager,
                          bool has_master)
        : manager_(manager), has_master_(has_master) {}

    void OnSuperstepStart(int64_t superstep,
                          const std::map<std::string, AggValue>& aggs)
        override {
      (void)superstep;
      before_ = aggs;
    }
    void OnMasterComputed(int64_t superstep,
                          const std::map<std::string, AggValue>& aggs,
                          bool master_halted) override {
      if (!has_master_ || manager_ == nullptr) return;
      if (!manager_->config().ShouldCaptureSuperstep(superstep)) return;
      debug::MasterTrace trace;
      trace.superstep = superstep;
      trace.total_vertices = engine_->NumAliveVertices();
      trace.total_edges = engine_->NumEdges();
      trace.aggregators = before_;
      trace.aggregators_after = aggs;
      trace.halted = master_halted;
      Status recorded = manager_->RecordMasterTrace(trace);
      if (!recorded.ok()) engine_->RequestAbort(std::move(recorded));
    }
    void set_engine(EngineT* engine) { engine_ = engine; }

   private:
    debug::CaptureManager<Traits>* manager_;
    bool has_master_;
    std::map<std::string, AggValue> before_;
    EngineT* engine_ = nullptr;
  };
  MasterCaptureObserver master_observer(manager ? &*manager : nullptr,
                                        spec.master != nullptr);

  /// Drains the trace sink at every superstep barrier. Two guarantees hang
  /// off this: a deferred flush error from the spooling sink aborts the run
  /// before the *next* checkpoint commits (the engine checks aborts after
  /// delivery, ahead of its checkpoint write), so recovery never resumes
  /// past unflushed records; and checkpoint-time counter snapshots always
  /// observe a drained, consistent sink.
  class SinkQuiesceObserver final : public EngineT::SuperstepObserver {
   public:
    explicit SinkQuiesceObserver(TraceSink* sink) : sink_(sink) {}
    void OnSuperstepEnd(int64_t superstep,
                        const SuperstepStats& stats) override {
      (void)superstep;
      (void)stats;
      Status drained = sink_->Quiesce();
      if (!drained.ok()) engine_->RequestAbort(std::move(drained));
    }
    void set_engine(EngineT* engine) { engine_ = engine; }

   private:
    TraceSink* sink_;
    EngineT* engine_ = nullptr;
  };
  SinkQuiesceObserver quiesce_observer(sink.get());

  typename EngineT::Options options = spec.options;
  options.checkpoint = ckpt;
  options.fault_injector = spec.fault_injector;
  options.phase_clock = phase_clock ? &*phase_clock : nullptr;
  options.journal = journal;
  options.telemetry = telemetry_entry.get();
  // Confined recovery replays the raw user computation: replayed vertices
  // must see the original deterministic inputs, and the capture/sanitizer
  // wrappers must not re-record supersteps that already have traces.
  options.replay_computation = spec.computation;
  const std::string job_id = options.job_id;
  const int max_attempts = std::max(0, spec.max_recovery_attempts);

  JobRunSummary summary;
  std::vector<obs::RecoveryEvent> recoveries;
  // Checkpoint accounting of failed attempts, folded into the final report
  // (a failed Run() returns no JobStats to carry them).
  uint64_t prior_ckpt_written = 0;
  uint64_t prior_ckpt_bytes = 0;
  double prior_ckpt_seconds = 0.0;
  double prior_restore_seconds = 0.0;
  uint64_t prior_topology_bytes = 0;
  uint64_t prior_log_bytes = 0;
  uint64_t prior_confined = 0;
  std::vector<obs::RecoveryEvent> prior_confined_events;
  Status last_failure = Status::OK();

  for (int attempt = 0;; ++attempt) {
    // Wrap order: Instrument(Sanitize(user)) — the user program talks to the
    // sanitizer's checked context, whose calls the capture interceptor then
    // records, so captures reflect what the user actually did.
    ComputationFactory<Traits> base =
        bsp ? bsp->WrapComputation() : spec.computation;
    ComputationFactory<Traits> factory =
        manager ? debug::InstrumentFactory<Traits>(std::move(base), &*manager)
                : std::move(base);
    EngineT engine(options,
                   attempt == 0 ? std::move(spec.vertices)
                                : std::vector<Vertex<Traits>>{},
                   std::move(factory), master);
    if (bsp) {
      // Fatal-policy and store-failure channel for this attempt: findings
      // abort the engine in flight (works from worker and master threads
      // alike — no exception has to thread through the barrier machinery).
      bsp->log().set_abort(
          [&engine](Status status) { engine.RequestAbort(std::move(status)); });
    }
    if (attempt > 0) {
      Result<int64_t> latest =
          LatestCommittedCheckpoint(*ckpt.store, job_id);
      if (!latest.ok()) {
        // Nothing to recover from; report the original failure.
        summary.job_status = last_failure;
        break;
      }
      const int64_t resume = *latest;
      GRAFT_RETURN_NOT_OK(engine.RestoreFromCheckpoint(resume));
      if (sink != nullptr) {
        // Drop spooled-but-unflushed records and clear the latched error
        // before pruning: the dropped records belong to supersteps about to
        // be re-executed, and an in-flight flush must not land after the
        // prune deletes its file.
        sink->DiscardPending();
      }
      if ((manager || bsp) && trace_store != nullptr) {
        // Re-executed supersteps re-capture and re-record findings: drop
        // their stale trace/finding files so the recovered run's records are
        // exactly the fault-free ones.
        GRAFT_RETURN_NOT_OK(
            debug::PruneTracesFrom(*trace_store, job_id, resume));
        // Re-executed supersteps rewrite files under their old names;
        // cached blocks of the pruned files are now stale.
        if (spec.trace_store != nullptr) {
          TraceBlockCache::Global().InvalidatePrefix(*spec.trace_store,
                                                     job_id + "/");
        }
      }
      if (bsp) {
        // In-memory mirror of the prune: forget findings from the pruned
        // supersteps so re-execution records them afresh (dedup would
        // otherwise suppress them while their files are gone).
        bsp->log().RewindToSuperstep(resume);
      }
      if (manager) {
        // Rewind the capture counters to the checkpoint's snapshot, so the
        // recovered run's counts — including the sink's per-job I/O stats —
        // are exactly the fault-free ones.
        auto snap = snapshots.find(resume);
        manager->RestoreCounters(snap != snapshots.end()
                                     ? snap->second
                                     : debug::CaptureCounters{});
        // Mirror the trace prune in the manifest-under-construction: pruned
        // files restart at record ordinal 0.
        manager->RewindManifest(resume);
      }
      obs::RecoveryEvent event;
      event.attempt = attempt;
      event.restored_superstep = resume;
      event.cause = last_failure.ToString();
      event.restore_seconds = engine.restore_seconds();
      recoveries.push_back(std::move(event));
      if (telemetry_entry != nullptr) {
        telemetry_entry->MarkRecovering(last_failure.ToString());
      }
      if (journal != nullptr) {
        journal->Instant("recovery.retry", "recovery", -1, resume,
                         static_cast<uint64_t>(attempt));
      }
    }
    engine.AddObserver(&snapshot_observer);
    master_observer.set_engine(&engine);
    engine.AddObserver(&master_observer);
    if (sink != nullptr) {
      quiesce_observer.set_engine(&engine);
      engine.AddObserver(&quiesce_observer);
    }
    if (spec.pre_run) spec.pre_run(engine);

    Result<JobStats> stats = engine.Run();
    if (stats.ok() && sink != nullptr) {
      // Early-termination paths (master halt, all vertices halted) skip the
      // final OnSuperstepEnd, so the last master trace may still be in
      // flight. A deferred capture-I/O failure is a run failure — retryable
      // through the normal recovery path like any other store fault.
      Status drained = sink->Quiesce();
      if (!drained.ok()) stats = std::move(drained);
    }
    if (stats.ok() && manager) {
      Status indexed = manager->WriteManifest();
      if (!indexed.ok()) stats = std::move(indexed);
    }
    summary.attempts = attempt + 1;
    if (stats.ok()) {
      summary.stats = std::move(stats).value();
      summary.job_status = Status::OK();
      obs::RecoveryProfile& rec = summary.stats.report.recovery;
      rec.checkpoints_written += prior_ckpt_written;
      rec.checkpoint_bytes += prior_ckpt_bytes;
      rec.checkpoint_seconds += prior_ckpt_seconds;
      rec.restore_seconds += prior_restore_seconds;
      rec.topology_bytes += prior_topology_bytes;
      rec.log_bytes += prior_log_bytes;
      rec.confined_recoveries += prior_confined;
      // The engine already filled rec.events with this attempt's confined
      // recoveries; prepend the ones from failed attempts and the
      // JobRunner's own restart events.
      std::vector<obs::RecoveryEvent> events =
          std::move(prior_confined_events);
      events.insert(events.end(), recoveries.begin(), recoveries.end());
      events.insert(events.end(), rec.events.begin(), rec.events.end());
      rec.events = std::move(events);
      rec.recoveries = rec.events.size();
      if (spec.post_run) spec.post_run(engine);
      break;
    }
    prior_ckpt_written += engine.checkpoints_written();
    prior_ckpt_bytes += engine.checkpoint_bytes();
    prior_ckpt_seconds += engine.checkpoint_seconds();
    prior_restore_seconds += engine.restore_seconds();
    prior_topology_bytes += engine.topology_bytes();
    prior_log_bytes += engine.outbox_log_bytes();
    prior_confined += engine.confined_recoveries();
    const std::vector<obs::RecoveryEvent>& confined =
        engine.confined_recovery_events();
    prior_confined_events.insert(prior_confined_events.end(),
                                 confined.begin(), confined.end());
    last_failure = stats.status();
    if (last_failure.IsUnavailable() && options.checkpoint.enabled() &&
        attempt < max_attempts) {
      continue;  // retry from the latest committed checkpoint
    }
    summary.job_status = last_failure;
    // Even a failed run reports its fault-tolerance accounting.
    obs::RecoveryProfile& rec = summary.stats.report.recovery;
    rec.checkpoints_enabled = options.checkpoint.enabled();
    rec.checkpoints_written = prior_ckpt_written;
    rec.checkpoint_bytes = prior_ckpt_bytes;
    rec.checkpoint_seconds = prior_ckpt_seconds;
    rec.restore_seconds = prior_restore_seconds;
    rec.topology_bytes = prior_topology_bytes;
    rec.log_bytes = prior_log_bytes;
    rec.confined_recoveries = prior_confined;
    std::vector<obs::RecoveryEvent> events = std::move(prior_confined_events);
    events.insert(events.end(), recoveries.begin(), recoveries.end());
    rec.events = std::move(events);
    rec.recoveries = rec.events.size();
    break;
  }
  summary.recoveries = std::move(recoveries);

  if (manager) {
    summary.captures = manager->num_captures();
    summary.violations = manager->num_violations();
    summary.exceptions = manager->num_exceptions();
    summary.dropped_by_capture_limit = manager->num_dropped_by_limit();
    summary.trace_bytes = manager->TraceBytes();
    summary.breakpoint_hits = manager->num_breakpoint_hits();
    // Attach the capture-overhead half of the run report (the engine filled
    // the phase-timing half during Run).
    manager->FillCaptureProfile(&summary.stats.report.capture);
    if (spec.options.metrics != nullptr) {
      manager->ExportMetrics(spec.options.metrics);
      trace_store->ExportMetrics(spec.options.metrics);
    }
  }
  if (bsp) {
    bsp->log().set_abort(nullptr);  // the last attempt's engine is gone
    bsp->log().FillAnalysisProfile(&summary.stats.report.analysis);
    summary.analysis_findings = summary.stats.report.analysis.findings_total;
    if (spec.options.metrics != nullptr) {
      bsp->log().ExportMetrics(spec.options.metrics);
    }
  }
  if (journal != nullptr) {
    journal->Instant("job.end", "job", -1, summary.stats.supersteps,
                     summary.job_status.ok() ? 1 : 0);
    if (spec.options.metrics != nullptr) {
      spec.options.metrics->GetCounter("journal.events_total")
          ->Increment(journal->appended());
      spec.options.metrics->GetCounter("journal.events_dropped_total")
          ->Increment(journal->dropped());
    }
  }
  if (telemetry_entry != nullptr) {
    // Final report: now enriched with the capture/analysis/recovery
    // profiles the engine's barrier snapshots did not have.
    telemetry_entry->PublishReport(summary.stats.report);
    telemetry_entry->Finish(summary.job_status.ok(),
                            summary.job_status.ToString());
    // Cache the full Chrome-trace export so /jobs/<id>/events outlives the
    // job-owned journal (the guard's second detach is a no-op).
    telemetry_entry->DetachJournal();
  }
  return summary;
}

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_JOB_H_
