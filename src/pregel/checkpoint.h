#ifndef GRAFT_PREGEL_CHECKPOINT_H_
#define GRAFT_PREGEL_CHECKPOINT_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "io/trace_store.h"
#include "pregel/agg_value.h"
#include "pregel/job_stats.h"

namespace graft {
namespace pregel {

/// Checkpoint policy, part of Engine::Options / JobSpec (DESIGN.md "Fault
/// tolerance & recovery"). A checkpoint labelled S snapshots the engine's
/// state at the *start* of superstep S — after the previous superstep's
/// mutations were applied and its messages delivered into inboxes, before
/// master/compute run — so recovery resumes by executing superstep S.
struct CheckpointOptions {
  /// Supersteps between checkpoints; 0 disables checkpointing. When > 0 the
  /// engine also writes checkpoint 0 (the loaded input graph) before the
  /// first superstep, so any later failure has a recovery point.
  int64_t interval = 0;
  /// Where checkpoints are written. JobSpec defaults this to the job's
  /// trace store; plain (non-debug) jobs must set it explicitly.
  TraceStore* store = nullptr;
  /// Committed checkpoints retained; older ones are garbage-collected via
  /// DeletePrefix after each successful commit.
  int keep = 1;

  bool enabled() const { return interval > 0 && store != nullptr; }
};

/// Checkpoint file layout inside the TraceStore. The `checkpoints/` root
/// keeps checkpoint files disjoint from the job's trace files (which live
/// under `<job_id>/...`), so trace pruning and checkpoint GC cannot step on
/// each other.
///
///   checkpoints/<job>/superstep_%06lld/part-%03d   one record per partition
///   checkpoints/<job>/superstep_%06lld/meta        CheckpointMeta record
///   checkpoints/<job>/superstep_%06lld/COMMIT      written last, after Flush
inline std::string CheckpointJobPrefix(const std::string& job_id) {
  return "checkpoints/" + job_id + "/";
}
inline std::string CheckpointDir(const std::string& job_id,
                                 int64_t superstep) {
  return StrFormat("checkpoints/%s/superstep_%06lld/", job_id.c_str(),
                   static_cast<long long>(superstep));
}
inline std::string CheckpointPartFile(const std::string& job_id,
                                      int64_t superstep, int partition) {
  return CheckpointDir(job_id, superstep) + StrFormat("part-%03d", partition);
}
inline std::string CheckpointMetaFile(const std::string& job_id,
                                      int64_t superstep) {
  return CheckpointDir(job_id, superstep) + "meta";
}
inline std::string CheckpointCommitFile(const std::string& job_id,
                                        int64_t superstep) {
  return CheckpointDir(job_id, superstep) + "COMMIT";
}

/// Everything a checkpoint needs beyond the per-partition vertex records:
/// resume coordinates, consistency counters, aggregator state, and the
/// JobStats prefix of the supersteps already executed (so a recovered run
/// reports complete whole-job statistics).
struct CheckpointMeta {
  static constexpr uint8_t kFormatVersion = 1;

  int64_t superstep = 0;
  int num_partitions = 0;
  /// Messages sitting in inboxes at the start of `superstep` (the "messages
  /// in flight" half of the termination check on resume). With a combiner
  /// this is the pre-combining delivered count, which the inbox contents no
  /// longer reveal — hence it is persisted rather than recounted on restore.
  uint64_t pending_messages = 0;
  /// Messages dropped by the delivery phase of `superstep` (delivery runs
  /// before the checkpoint boundary, but the drop count lands in the
  /// superstep's stats entry recorded after it — a resumed run must
  /// re-credit it or under-report drops versus the fault-free run).
  uint64_t messages_dropped_at_resume = 0;
  /// Per-partition (alive, edge, awake) counters for restore validation.
  struct PartitionCounters {
    uint64_t alive = 0;
    uint64_t edges = 0;
    uint64_t awake = 0;
  };
  std::vector<PartitionCounters> partitions;
  /// Aggregator values visible at the start of `superstep` (merged at the
  /// end of superstep-1). Specs are re-registered by master Initialize on
  /// recovery, so only values are persisted.
  std::map<std::string, AggValue> aggregators;
  // JobStats prefix for supersteps 0 .. superstep-1.
  uint64_t total_messages = 0;
  uint64_t total_messages_dropped = 0;
  std::vector<SuperstepStats> per_superstep;

  std::string Serialize() const {
    BinaryWriter w;
    w.WriteU8(kFormatVersion);
    w.WriteVarint(static_cast<uint64_t>(superstep));
    w.WriteVarint(static_cast<uint64_t>(num_partitions));
    w.WriteVarint(pending_messages);
    w.WriteVarint(messages_dropped_at_resume);
    for (const PartitionCounters& p : partitions) {
      w.WriteVarint(p.alive);
      w.WriteVarint(p.edges);
      w.WriteVarint(p.awake);
    }
    w.WriteVarint(aggregators.size());
    for (const auto& [name, value] : aggregators) {
      w.WriteString(name);
      value.Write(w);
    }
    w.WriteVarint(total_messages);
    w.WriteVarint(total_messages_dropped);
    w.WriteVarint(per_superstep.size());
    for (const SuperstepStats& ss : per_superstep) {
      w.WriteVarint(static_cast<uint64_t>(ss.superstep));
      w.WriteVarint(ss.active_vertices);
      w.WriteVarint(ss.messages_sent);
      w.WriteVarint(ss.messages_dropped);
      w.WriteVarint(ss.vertices_removed);
      w.WriteVarint(ss.edges_added);
      w.WriteVarint(ss.edges_removed);
      w.WriteDouble(ss.seconds);
    }
    return std::move(w.TakeBuffer());
  }

  static Result<CheckpointMeta> Parse(std::string_view data) {
    BinaryReader r(data);
    CheckpointMeta meta;
    GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
    if (version != kFormatVersion) {
      return Status::InvalidArgument(
          StrFormat("unsupported checkpoint format version %d", version));
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t superstep, r.ReadVarint());
    meta.superstep = static_cast<int64_t>(superstep);
    GRAFT_ASSIGN_OR_RETURN(uint64_t parts, r.ReadVarint());
    meta.num_partitions = static_cast<int>(parts);
    GRAFT_ASSIGN_OR_RETURN(meta.pending_messages, r.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(meta.messages_dropped_at_resume, r.ReadVarint());
    meta.partitions.resize(parts);
    for (uint64_t p = 0; p < parts; ++p) {
      GRAFT_ASSIGN_OR_RETURN(meta.partitions[p].alive, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(meta.partitions[p].edges, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(meta.partitions[p].awake, r.ReadVarint());
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_aggs, r.ReadVarint());
    for (uint64_t i = 0; i < num_aggs; ++i) {
      GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
      GRAFT_ASSIGN_OR_RETURN(AggValue value, AggValue::Read(r));
      meta.aggregators.emplace(std::move(name), std::move(value));
    }
    GRAFT_ASSIGN_OR_RETURN(meta.total_messages, r.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(meta.total_messages_dropped, r.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_ss, r.ReadVarint());
    meta.per_superstep.resize(num_ss);
    for (uint64_t i = 0; i < num_ss; ++i) {
      SuperstepStats& ss = meta.per_superstep[i];
      GRAFT_ASSIGN_OR_RETURN(uint64_t s, r.ReadVarint());
      ss.superstep = static_cast<int64_t>(s);
      GRAFT_ASSIGN_OR_RETURN(ss.active_vertices, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.messages_sent, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.messages_dropped, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.vertices_removed, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.edges_added, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.edges_removed, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.seconds, r.ReadDouble());
    }
    return meta;
  }
};

/// Supersteps of all committed checkpoints for `job_id`, ascending. A
/// checkpoint is committed iff its COMMIT marker exists — partially-written
/// checkpoints (a crash mid-write) are invisible to recovery.
inline std::vector<int64_t> ListCommittedCheckpoints(
    const TraceStore& store, const std::string& job_id) {
  const std::string prefix = CheckpointJobPrefix(job_id);
  std::vector<int64_t> supersteps;
  for (const std::string& file : store.ListFiles(prefix)) {
    const std::string_view rest = std::string_view(file).substr(prefix.size());
    long long s = 0;
    if (rest.size() > 10 && rest.substr(0, 10) == "superstep_" &&
        rest.substr(rest.find('/') + 1) == "COMMIT") {
      s = std::stoll(std::string(rest.substr(10, rest.find('/') - 10)));
      supersteps.push_back(static_cast<int64_t>(s));
    }
  }
  std::sort(supersteps.begin(), supersteps.end());
  return supersteps;
}

/// Latest committed checkpoint, or NotFound when the job has none.
inline Result<int64_t> LatestCommittedCheckpoint(const TraceStore& store,
                                                 const std::string& job_id) {
  std::vector<int64_t> all = ListCommittedCheckpoints(store, job_id);
  if (all.empty()) {
    return Status::NotFound("no committed checkpoint for job '" + job_id +
                            "'");
  }
  return all.back();
}

/// Deletes all but the newest `keep` committed checkpoints (and any
/// uncommitted leftovers older than the newest kept one).
inline Status GarbageCollectCheckpoints(TraceStore& store,
                                        const std::string& job_id, int keep) {
  if (keep < 1) keep = 1;
  std::vector<int64_t> all = ListCommittedCheckpoints(store, job_id);
  if (static_cast<int>(all.size()) <= keep) return Status::OK();
  for (size_t i = 0; i + static_cast<size_t>(keep) < all.size(); ++i) {
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(CheckpointDir(job_id, all[i])));
  }
  return Status::OK();
}

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_CHECKPOINT_H_
