#ifndef GRAFT_PREGEL_CHECKPOINT_H_
#define GRAFT_PREGEL_CHECKPOINT_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "io/trace_store.h"
#include "pregel/agg_value.h"
#include "pregel/job_stats.h"

namespace graft {
namespace pregel {

/// What a checkpoint persists (DESIGN.md §12).
///
///  * kFull — the legacy snapshot: vertex values, edges, halt flags, and the
///    full pending inboxes, rewritten every checkpointed superstep.
///  * kDelta — the lightweight FTPregel-style protocol: immutable topology
///    (CSR-style packed edges) is written once per mutation epoch; each
///    checkpoint writes only vertex values + halt flags for partitions that
///    changed since their last value part (clean partitions are header-only
///    — the meta just points at their previous value part); pending inboxes
///    are never snapshotted — every delivery appends the per-partition
///    outbox to a message log and recovery *regenerates* inboxes by
///    replaying it. Delta mode also unlocks confined recovery: a failure at
///    one partition rolls back and recomputes only that partition.
enum class CheckpointMode : uint8_t {
  kFull = 0,
  kDelta = 1,
};

/// Checkpoint policy, part of Engine::Options / JobSpec (DESIGN.md "Fault
/// tolerance & recovery"). A checkpoint labelled S snapshots the engine's
/// state at the *start* of superstep S — after the previous superstep's
/// mutations were applied and its messages delivered into inboxes, before
/// master/compute run — so recovery resumes by executing superstep S.
struct CheckpointOptions {
  /// Supersteps between checkpoints; 0 disables checkpointing. When > 0 the
  /// engine also writes checkpoint 0 (the loaded input graph) before the
  /// first superstep, so any later failure has a recovery point.
  int64_t interval = 0;
  /// Where checkpoints are written. JobSpec defaults this to the job's
  /// trace store; plain (non-debug) jobs must set it explicitly.
  TraceStore* store = nullptr;
  /// Committed checkpoints retained; older ones are garbage-collected via
  /// DeletePrefix after each successful commit.
  int keep = 1;
  /// Snapshot protocol. kDelta is the production recommendation (see the
  /// EXPERIMENTS.md overhead table); kFull remains the default for
  /// compatibility with jobs that inspect raw checkpoint parts.
  CheckpointMode mode = CheckpointMode::kFull;
  /// Delta mode only: recover a single failed partition in-place (rebuild it
  /// from its checkpoint + log replay on the engine thread) instead of
  /// rolling the whole job back. Falls back to global rollback whenever its
  /// preconditions fail (no committed checkpoint yet, or the topology
  /// mutated since the checkpoint).
  bool confined = true;
  /// Spool part/meta writes through an async sink and quiesce before COMMIT
  /// (keeps store latency off the superstep barrier); set false to force
  /// the synchronous single-shot commit.
  bool async_parts = true;

  bool enabled() const { return interval > 0 && store != nullptr; }
  bool delta() const { return mode == CheckpointMode::kDelta; }
};

/// Checkpoint file layout inside the TraceStore. The `checkpoints/` root
/// keeps checkpoint files disjoint from the job's trace files (which live
/// under `<job_id>/...`), so trace pruning and checkpoint GC cannot step on
/// each other.
///
///   checkpoints/<job>/superstep_%06lld/part-%03d   one record per partition
///   checkpoints/<job>/superstep_%06lld/meta        CheckpointMeta record
///   checkpoints/<job>/superstep_%06lld/COMMIT      written last, after Flush
///
/// Delta mode adds two sibling trees (ListCommittedCheckpoints keys on the
/// `superstep_*/COMMIT` shape, so these never masquerade as checkpoints):
///
///   checkpoints/<job>/topology_%06lld/part-%03d    packed edges, one write
///                                                  per mutation epoch
///   checkpoints/<job>/outbox/s%06lld/part-%03d     logged outbox units
///                                                  delivered at superstep s
///                                                  into each partition
///   checkpoints/<job>/outbox/s%06lld/aggs          aggregator values visible
///                                                  to compute at s (only
///                                                  when non-empty)
inline std::string CheckpointJobPrefix(const std::string& job_id) {
  return "checkpoints/" + job_id + "/";
}
inline std::string CheckpointDir(const std::string& job_id,
                                 int64_t superstep) {
  return StrFormat("checkpoints/%s/superstep_%06lld/", job_id.c_str(),
                   static_cast<long long>(superstep));
}
inline std::string CheckpointPartFile(const std::string& job_id,
                                      int64_t superstep, int partition) {
  return CheckpointDir(job_id, superstep) + StrFormat("part-%03d", partition);
}
inline std::string CheckpointMetaFile(const std::string& job_id,
                                      int64_t superstep) {
  return CheckpointDir(job_id, superstep) + "meta";
}
inline std::string CheckpointCommitFile(const std::string& job_id,
                                        int64_t superstep) {
  return CheckpointDir(job_id, superstep) + "COMMIT";
}
inline std::string CheckpointTopologyDir(const std::string& job_id,
                                         int64_t epoch) {
  return StrFormat("checkpoints/%s/topology_%06lld/", job_id.c_str(),
                   static_cast<long long>(epoch));
}
inline std::string CheckpointTopologyPartFile(const std::string& job_id,
                                              int64_t epoch, int partition) {
  return CheckpointTopologyDir(job_id, epoch) +
         StrFormat("part-%03d", partition);
}
inline std::string OutboxRoot(const std::string& job_id) {
  return CheckpointJobPrefix(job_id) + "outbox/";
}
inline std::string OutboxLogDir(const std::string& job_id,
                                int64_t superstep) {
  return StrFormat("checkpoints/%s/outbox/s%06lld/", job_id.c_str(),
                   static_cast<long long>(superstep));
}
inline std::string OutboxLogFile(const std::string& job_id, int64_t superstep,
                                 int partition) {
  return OutboxLogDir(job_id, superstep) + StrFormat("part-%03d", partition);
}
inline std::string OutboxAggFile(const std::string& job_id,
                                 int64_t superstep) {
  return OutboxLogDir(job_id, superstep) + "aggs";
}

/// Everything a checkpoint needs beyond the per-partition vertex records:
/// resume coordinates, consistency counters, aggregator state, and the
/// JobStats prefix of the supersteps already executed (so a recovered run
/// reports complete whole-job statistics).
struct CheckpointMeta {
  static constexpr uint8_t kFormatVersion = 2;

  int64_t superstep = 0;
  int num_partitions = 0;
  /// Snapshot protocol this checkpoint was written with; dictates how
  /// restore rebuilds state (kFull reads self-contained part files, kDelta
  /// zips topology parts with value deltas and replays the outbox log).
  CheckpointMode mode = CheckpointMode::kFull;
  /// Delta mode: the mutation epoch whose topology parts this checkpoint's
  /// value deltas align with (slot-for-slot). 0 in full mode.
  int64_t topology_epoch = 0;
  /// The authoritative count of messages pending at the start of
  /// `superstep` — every message delivered into an inbox by the delivery
  /// phase of `superstep`, counted pre-combining. In full mode the inbox
  /// snapshot stands in for delivery on resume and this count re-credits the
  /// termination check; in delta mode recovery regenerates the same inboxes
  /// by replaying the outbox log and *asserts* the replayed count equals
  /// this value (a mismatch means the log and checkpoint disagree and the
  /// restore is rejected).
  uint64_t pending_messages = 0;
  /// Messages dropped by the delivery phase of `superstep` (delivery runs
  /// before the checkpoint boundary, but the drop count lands in the
  /// superstep's stats entry recorded after it — a resumed run must
  /// re-credit it or under-report drops versus the fault-free run). Delta
  /// replay asserts this too.
  uint64_t messages_dropped_at_resume = 0;
  /// Per-partition (alive, edge, awake) counters for restore validation,
  /// plus the superstep whose value part holds this partition's state —
  /// equal to `superstep` when the partition was dirty at the boundary,
  /// older when the checkpoint carried a header-only delta for it. Always
  /// equal to `superstep` in full mode.
  struct PartitionCounters {
    uint64_t alive = 0;
    uint64_t edges = 0;
    uint64_t awake = 0;
    int64_t base_superstep = 0;
  };
  std::vector<PartitionCounters> partitions;
  /// Aggregator values visible at the start of `superstep` (merged at the
  /// end of superstep-1). Specs are re-registered by master Initialize on
  /// recovery, so only values are persisted.
  std::map<std::string, AggValue> aggregators;
  // JobStats prefix for supersteps 0 .. superstep-1.
  uint64_t total_messages = 0;
  uint64_t total_messages_dropped = 0;
  std::vector<SuperstepStats> per_superstep;

  std::string Serialize() const {
    BinaryWriter w;
    w.WriteU8(kFormatVersion);
    w.WriteU8(static_cast<uint8_t>(mode));
    w.WriteVarint(static_cast<uint64_t>(superstep));
    w.WriteVarint(static_cast<uint64_t>(num_partitions));
    w.WriteVarint(static_cast<uint64_t>(topology_epoch));
    w.WriteVarint(pending_messages);
    w.WriteVarint(messages_dropped_at_resume);
    for (const PartitionCounters& p : partitions) {
      w.WriteVarint(p.alive);
      w.WriteVarint(p.edges);
      w.WriteVarint(p.awake);
      w.WriteVarint(static_cast<uint64_t>(p.base_superstep));
    }
    w.WriteVarint(aggregators.size());
    for (const auto& [name, value] : aggregators) {
      w.WriteString(name);
      value.Write(w);
    }
    w.WriteVarint(total_messages);
    w.WriteVarint(total_messages_dropped);
    w.WriteVarint(per_superstep.size());
    for (const SuperstepStats& ss : per_superstep) {
      w.WriteVarint(static_cast<uint64_t>(ss.superstep));
      w.WriteVarint(ss.active_vertices);
      w.WriteVarint(ss.messages_sent);
      w.WriteVarint(ss.messages_dropped);
      w.WriteVarint(ss.vertices_removed);
      w.WriteVarint(ss.edges_added);
      w.WriteVarint(ss.edges_removed);
      w.WriteDouble(ss.seconds);
    }
    return std::move(w.TakeBuffer());
  }

  static Result<CheckpointMeta> Parse(std::string_view data) {
    BinaryReader r(data);
    CheckpointMeta meta;
    GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
    if (version != kFormatVersion) {
      return Status::InvalidArgument(
          StrFormat("unsupported checkpoint format version %d", version));
    }
    GRAFT_ASSIGN_OR_RETURN(uint8_t mode, r.ReadU8());
    if (mode > static_cast<uint8_t>(CheckpointMode::kDelta)) {
      return Status::InvalidArgument(
          StrFormat("unknown checkpoint mode %d", mode));
    }
    meta.mode = static_cast<CheckpointMode>(mode);
    GRAFT_ASSIGN_OR_RETURN(uint64_t superstep, r.ReadVarint());
    meta.superstep = static_cast<int64_t>(superstep);
    GRAFT_ASSIGN_OR_RETURN(uint64_t parts, r.ReadVarint());
    meta.num_partitions = static_cast<int>(parts);
    GRAFT_ASSIGN_OR_RETURN(uint64_t epoch, r.ReadVarint());
    meta.topology_epoch = static_cast<int64_t>(epoch);
    GRAFT_ASSIGN_OR_RETURN(meta.pending_messages, r.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(meta.messages_dropped_at_resume, r.ReadVarint());
    meta.partitions.resize(parts);
    for (uint64_t p = 0; p < parts; ++p) {
      GRAFT_ASSIGN_OR_RETURN(meta.partitions[p].alive, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(meta.partitions[p].edges, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(meta.partitions[p].awake, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(uint64_t base, r.ReadVarint());
      meta.partitions[p].base_superstep = static_cast<int64_t>(base);
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_aggs, r.ReadVarint());
    for (uint64_t i = 0; i < num_aggs; ++i) {
      GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
      GRAFT_ASSIGN_OR_RETURN(AggValue value, AggValue::Read(r));
      meta.aggregators.emplace(std::move(name), std::move(value));
    }
    GRAFT_ASSIGN_OR_RETURN(meta.total_messages, r.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(meta.total_messages_dropped, r.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_ss, r.ReadVarint());
    meta.per_superstep.resize(num_ss);
    for (uint64_t i = 0; i < num_ss; ++i) {
      SuperstepStats& ss = meta.per_superstep[i];
      GRAFT_ASSIGN_OR_RETURN(uint64_t s, r.ReadVarint());
      ss.superstep = static_cast<int64_t>(s);
      GRAFT_ASSIGN_OR_RETURN(ss.active_vertices, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.messages_sent, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.messages_dropped, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.vertices_removed, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.edges_added, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.edges_removed, r.ReadVarint());
      GRAFT_ASSIGN_OR_RETURN(ss.seconds, r.ReadDouble());
    }
    return meta;
  }
};

/// Supersteps of all committed checkpoints for `job_id`, ascending. A
/// checkpoint is committed iff its COMMIT marker exists — partially-written
/// checkpoints (a crash mid-write) are invisible to recovery.
inline std::vector<int64_t> ListCommittedCheckpoints(
    const TraceStore& store, const std::string& job_id) {
  const std::string prefix = CheckpointJobPrefix(job_id);
  std::vector<int64_t> supersteps;
  for (const std::string& file : store.ListFiles(prefix)) {
    const std::string_view rest = std::string_view(file).substr(prefix.size());
    long long s = 0;
    if (rest.size() > 10 && rest.substr(0, 10) == "superstep_" &&
        rest.substr(rest.find('/') + 1) == "COMMIT") {
      s = std::stoll(std::string(rest.substr(10, rest.find('/') - 10)));
      supersteps.push_back(static_cast<int64_t>(s));
    }
  }
  std::sort(supersteps.begin(), supersteps.end());
  return supersteps;
}

/// Latest committed checkpoint, or NotFound when the job has none.
inline Result<int64_t> LatestCommittedCheckpoint(const TraceStore& store,
                                                 const std::string& job_id) {
  std::vector<int64_t> all = ListCommittedCheckpoints(store, job_id);
  if (all.empty()) {
    return Status::NotFound("no committed checkpoint for job '" + job_id +
                            "'");
  }
  return all.back();
}

/// Deletes all but the newest `keep` committed checkpoints (and any
/// uncommitted leftovers older than the newest kept one). Delta-aware: a
/// kept delta checkpoint may reference *older* superstep dirs (header-only
/// value deltas point clean partitions at their previous value part) and a
/// topology epoch dir, so the kept metas are read first and everything they
/// reference survives; outbox log dirs older than the oldest kept checkpoint
/// are pruned too (replay never reaches before it). A kept meta that cannot
/// be read is treated as full-mode (it references nothing beyond its own
/// dir) — restore will surface the real error if the checkpoint is chosen.
inline Status GarbageCollectCheckpoints(TraceStore& store,
                                        const std::string& job_id, int keep) {
  if (keep < 1) keep = 1;
  std::vector<int64_t> all = ListCommittedCheckpoints(store, job_id);
  if (all.empty()) return Status::OK();
  const size_t kept_begin = all.size() > static_cast<size_t>(keep)
                                ? all.size() - static_cast<size_t>(keep)
                                : 0;
  std::set<int64_t> live_supersteps;
  std::set<int64_t> live_epochs;
  bool any_delta = false;
  for (size_t i = kept_begin; i < all.size(); ++i) {
    live_supersteps.insert(all[i]);
    Result<std::vector<std::string>> records =
        store.ReadAll(CheckpointMetaFile(job_id, all[i]));
    if (!records.ok() || records->size() != 1) continue;
    Result<CheckpointMeta> meta = CheckpointMeta::Parse((*records)[0]);
    if (!meta.ok()) continue;
    if (meta->mode == CheckpointMode::kDelta) {
      any_delta = true;
      live_epochs.insert(meta->topology_epoch);
      for (const CheckpointMeta::PartitionCounters& p : meta->partitions) {
        live_supersteps.insert(p.base_superstep);
      }
    }
  }
  for (size_t i = 0; i < kept_begin; ++i) {
    if (live_supersteps.count(all[i]) != 0) continue;
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(CheckpointDir(job_id, all[i])));
  }
  if (!any_delta) return Status::OK();
  // Prune unreferenced topology epochs and pre-checkpoint outbox logs. The
  // directory coordinates are parsed back out of the file listing; anything
  // that does not match the known shapes is left alone.
  const std::string prefix = CheckpointJobPrefix(job_id);
  std::set<int64_t> dead_epochs;
  std::set<int64_t> dead_logs;
  const int64_t oldest_kept = all[kept_begin];
  for (const std::string& file : store.ListFiles(prefix)) {
    const std::string_view rest = std::string_view(file).substr(prefix.size());
    const size_t slash = rest.find('/');
    if (slash == std::string_view::npos) continue;
    if (rest.substr(0, 9) == "topology_") {
      const int64_t epoch = std::stoll(std::string(rest.substr(9, slash - 9)));
      if (live_epochs.count(epoch) == 0) dead_epochs.insert(epoch);
    } else if (rest.substr(0, 7) == "outbox/") {
      const std::string_view sub = rest.substr(7);
      const size_t sub_slash = sub.find('/');
      if (sub_slash == std::string_view::npos || sub.substr(0, 1) != "s") {
        continue;
      }
      const int64_t s = std::stoll(std::string(sub.substr(1, sub_slash - 1)));
      if (s < oldest_kept) dead_logs.insert(s);
    }
  }
  for (int64_t epoch : dead_epochs) {
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(CheckpointTopologyDir(job_id,
                                                                 epoch)));
  }
  for (int64_t s : dead_logs) {
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(OutboxLogDir(job_id, s)));
  }
  return Status::OK();
}

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_CHECKPOINT_H_
