#ifndef GRAFT_PREGEL_VERTEX_H_
#define GRAFT_PREGEL_VERTEX_H_

#include <string>
#include <vector>

#include "graph/simple_graph.h"
#include "pregel/value_types.h"

namespace graft {
namespace pregel {

using graft::VertexId;

/// Typed out-edge.
template <WritableValue EdgeValueT>
struct Edge {
  VertexId target;
  EdgeValueT value;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Trait bundle parameterizing a Pregel job, mirroring Giraph's
/// <I, V, E, M> generics (vertex ids are fixed to int64, DESIGN.md §2).
template <typename T>
concept JobTraits = requires {
  requires WritableValue<typename T::VertexValue>;
  requires WritableValue<typename T::EdgeValue>;
  requires WritableValue<typename T::Message>;
};

/// A vertex as seen by Compute(): id, mutable value, mutable out-edges, and
/// the active/halted flag toggled via VoteToHalt (§2 item list).
template <JobTraits Traits>
class Vertex {
 public:
  using VertexValue = typename Traits::VertexValue;
  using EdgeValue = typename Traits::EdgeValue;
  using EdgeT = Edge<EdgeValue>;

  Vertex() = default;
  Vertex(VertexId id, VertexValue value, std::vector<EdgeT> edges)
      : id_(id), value_(std::move(value)), edges_(std::move(edges)) {}

  VertexId id() const { return id_; }

  const VertexValue& value() const { return value_; }
  VertexValue* mutable_value() { return &value_; }
  void set_value(VertexValue v) { value_ = std::move(v); }

  const std::vector<EdgeT>& edges() const { return edges_; }
  std::vector<EdgeT>* mutable_edges() { return &edges_; }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an out-edge in place (local topology mutation; remote mutations go
  /// through ComputeContext requests).
  void AddEdge(VertexId target, EdgeValue value) {
    edges_.push_back(EdgeT{target, std::move(value)});
  }

  /// Removes all out-edges to `target`; returns how many were removed.
  size_t RemoveEdgesTo(VertexId target) {
    size_t before = edges_.size();
    std::erase_if(edges_, [&](const EdgeT& e) { return e.target == target; });
    return before - edges_.size();
  }

  /// Declares this vertex done until a message re-activates it.
  void VoteToHalt() { halted_ = true; }
  void Activate() { halted_ = false; }
  bool halted() const { return halted_; }

  /// Engine-internal liveness (false after a RemoveVertex mutation).
  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

 private:
  VertexId id_ = 0;
  VertexValue value_{};
  std::vector<EdgeT> edges_;
  bool halted_ = false;
  bool alive_ = true;
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_VERTEX_H_
