#ifndef GRAFT_PREGEL_VERTEX_H_
#define GRAFT_PREGEL_VERTEX_H_

#include <string>
#include <vector>

#include "graph/simple_graph.h"
#include "pregel/value_types.h"

namespace graft {
namespace pregel {

using graft::VertexId;

/// Typed out-edge.
template <WritableValue EdgeValueT>
struct Edge {
  VertexId target;
  EdgeValueT value;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Trait bundle parameterizing a Pregel job, mirroring Giraph's
/// <I, V, E, M> generics (vertex ids are fixed to int64, DESIGN.md §2).
template <typename T>
concept JobTraits = requires {
  requires WritableValue<typename T::VertexValue>;
  requires WritableValue<typename T::EdgeValue>;
  requires WritableValue<typename T::Message>;
};

/// Observer for vertex state transitions during a user Compute() call. The
/// BspSanitizer (src/analysis) installs one on the worker thread for the
/// duration of each checked Compute() so it can see the *ordering* of halt
/// votes and value/edge mutations — the information needed to flag
/// "mutation after VoteToHalt without reactivation", which no context
/// decorator can observe because vertex mutation bypasses the context.
///
/// Cost discipline: when no watcher is installed (every release-path run)
/// each hook is one thread_local load and a not-taken branch next to a
/// store the mutator was doing anyway — nothing measurable (the
/// bench_engine_baseline sanitizer-off guard holds this line).
class VertexWatcher {
 public:
  virtual ~VertexWatcher() = default;
  virtual void OnVoteToHalt(VertexId id) { (void)id; }
  virtual void OnActivate(VertexId id) { (void)id; }
  virtual void OnValueMutation(VertexId id) { (void)id; }
  virtual void OnEdgeMutation(VertexId id) { (void)id; }

  /// Watcher for the current thread; null unless a checked Compute() call is
  /// in flight on it.
  static VertexWatcher* Current() { return current_; }

  /// Installs `watcher` on this thread and returns the previous one (restore
  /// it when the checked call returns).
  static VertexWatcher* Install(VertexWatcher* watcher) {
    VertexWatcher* previous = current_;
    current_ = watcher;
    return previous;
  }

 private:
  static inline thread_local VertexWatcher* current_ = nullptr;
};

/// A vertex as seen by Compute(): id, mutable value, mutable out-edges, and
/// the active/halted flag toggled via VoteToHalt (§2 item list).
template <JobTraits Traits>
class Vertex {
 public:
  using VertexValue = typename Traits::VertexValue;
  using EdgeValue = typename Traits::EdgeValue;
  using EdgeT = Edge<EdgeValue>;

  Vertex() = default;
  Vertex(VertexId id, VertexValue value, std::vector<EdgeT> edges)
      : id_(id), value_(std::move(value)), edges_(std::move(edges)) {}

  VertexId id() const { return id_; }

  const VertexValue& value() const { return value_; }
  VertexValue* mutable_value() {
    if (VertexWatcher* w = VertexWatcher::Current()) w->OnValueMutation(id_);
    return &value_;
  }
  void set_value(VertexValue v) {
    if (VertexWatcher* w = VertexWatcher::Current()) w->OnValueMutation(id_);
    value_ = std::move(v);
  }

  const std::vector<EdgeT>& edges() const { return edges_; }
  std::vector<EdgeT>* mutable_edges() {
    if (VertexWatcher* w = VertexWatcher::Current()) w->OnEdgeMutation(id_);
    return &edges_;
  }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an out-edge in place (local topology mutation; remote mutations go
  /// through ComputeContext requests).
  void AddEdge(VertexId target, EdgeValue value) {
    if (VertexWatcher* w = VertexWatcher::Current()) w->OnEdgeMutation(id_);
    edges_.push_back(EdgeT{target, std::move(value)});
  }

  /// Removes all out-edges to `target`; returns how many were removed.
  size_t RemoveEdgesTo(VertexId target) {
    if (VertexWatcher* w = VertexWatcher::Current()) w->OnEdgeMutation(id_);
    size_t before = edges_.size();
    std::erase_if(edges_, [&](const EdgeT& e) { return e.target == target; });
    return before - edges_.size();
  }

  /// Declares this vertex done until a message re-activates it.
  void VoteToHalt() {
    if (VertexWatcher* w = VertexWatcher::Current()) w->OnVoteToHalt(id_);
    halted_ = true;
  }
  void Activate() {
    if (VertexWatcher* w = VertexWatcher::Current()) w->OnActivate(id_);
    halted_ = false;
  }
  bool halted() const { return halted_; }

  /// Engine-internal liveness (false after a RemoveVertex mutation).
  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

 private:
  VertexId id_ = 0;
  VertexValue value_{};
  std::vector<EdgeT> edges_;
  bool halted_ = false;
  bool alive_ = true;
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_VERTEX_H_
