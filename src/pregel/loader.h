#ifndef GRAFT_PREGEL_LOADER_H_
#define GRAFT_PREGEL_LOADER_H_

#include <utility>
#include <vector>

#include "graph/simple_graph.h"
#include "pregel/vertex.h"

namespace graft {
namespace pregel {

/// Materializes typed engine vertices from an untyped SimpleGraph.
/// `vertex_init(id)` produces the initial VertexValue; `edge_init(source,
/// target, weight)` maps the double weight into the EdgeValue. This is the
/// analogue of a Giraph VertexInputFormat.
template <JobTraits Traits, typename VertexInit, typename EdgeInit>
std::vector<Vertex<Traits>> LoadVertices(const graph::SimpleGraph& g,
                                         VertexInit&& vertex_init,
                                         EdgeInit&& edge_init) {
  std::vector<Vertex<Traits>> vertices;
  vertices.reserve(g.NumVertices());
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    VertexId id = g.IdAt(i);
    std::vector<Edge<typename Traits::EdgeValue>> edges;
    edges.reserve(g.OutEdges(i).size());
    for (const auto& e : g.OutEdges(i)) {
      edges.push_back({e.target, edge_init(id, e.target, e.weight)});
    }
    vertices.emplace_back(id, vertex_init(id), std::move(edges));
  }
  return vertices;
}

/// Loader for the common unweighted case (EdgeValue = NullValue).
template <JobTraits Traits, typename VertexInit>
std::vector<Vertex<Traits>> LoadUnweighted(const graph::SimpleGraph& g,
                                           VertexInit&& vertex_init) {
  return LoadVertices<Traits>(
      g, std::forward<VertexInit>(vertex_init),
      [](VertexId, VertexId, double) { return typename Traits::EdgeValue{}; });
}

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_LOADER_H_
