#ifndef GRAFT_PREGEL_MESSAGE_STORE_H_
#define GRAFT_PREGEL_MESSAGE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "graph/simple_graph.h"

namespace graft {
namespace pregel {

/// Chunk-backed append-only buffer: a list of fixed-capacity chunks that are
/// reused (not freed) across Clear() calls, so steady-state supersteps append
/// into already-reserved memory and growth never copies existing elements
/// (unlike std::vector's realloc). The arena behind the engine's outboxes.
template <typename T>
class ChunkedBuffer {
 public:
  static constexpr size_t kDefaultChunkCapacity = 4096;

  explicit ChunkedBuffer(size_t chunk_capacity = kDefaultChunkCapacity)
      : chunk_capacity_(chunk_capacity) {}

  void Append(T value) {
    if (chunks_.empty()) {
      AddChunk();
    } else if (chunks_[active_].size() == chunk_capacity_) {
      ++active_;
      if (active_ == chunks_.size()) AddChunk();
    }
    chunks_[active_].push_back(std::move(value));
    ++size_;
  }

  /// Invokes fn(const T&) over all elements in append order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const std::vector<T>& chunk : chunks_) {
      for (const T& v : chunk) fn(v);
      if (chunk.size() < chunk_capacity_) break;  // last used chunk
    }
  }

  /// Drops all elements but keeps every chunk's capacity for reuse.
  void Clear() {
    for (size_t c = 0; c <= active_ && c < chunks_.size(); ++c) {
      chunks_[c].clear();
    }
    active_ = 0;
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of chunks ever allocated (they survive Clear) — lets tests
  /// assert that steady-state refills reuse capacity instead of growing.
  size_t allocated_chunks() const { return chunks_.size(); }

 private:
  void AddChunk() {
    chunks_.emplace_back();
    chunks_.back().reserve(chunk_capacity_);
    active_ = chunks_.size() - 1;
  }

  size_t chunk_capacity_;
  std::vector<std::vector<T>> chunks_;
  size_t active_ = 0;
  size_t size_ = 0;
};

/// Double-buffered message store for the BSP engine (DESIGN.md §4). The two
/// buffers are the per-(sender, destination-partition) *outboxes* written
/// during the compute phase of superstep S and the per-vertex *inboxes* the
/// delivery phase of superstep S+1 drains them into — compute always reads
/// one buffer while sends fill the other, and every buffer keeps its
/// capacity across supersteps so the steady-state message path allocates
/// nothing.
///
/// Without a combiner, an outbox is a chunk-backed list of (target, message)
/// pairs, resolved to inbox slots at delivery (one hash lookup per message,
/// by the destination partition's owner).
///
/// With a combiner, combining happens on the SENDER side: each worker keeps
/// one message slot per destination vertex (dense, indexed by the
/// destination partition's vertex slot — the id lookup the sender already
/// pays routes the message straight to its slot) and folds every further
/// send into that slot. k messages from one worker to one vertex therefore
/// occupy O(1) space, and delivery merges at most num_partitions partials
/// per vertex instead of walking every message. Slots are epoch-tagged, so
/// clearing an outbox after delivery is O(touched slots), not O(V).
/// Messages whose target cannot be resolved at send time (unknown id, or a
/// vertex currently dead) fall back to the entry list and are resolved at
/// delivery, preserving the engine's missing-vertex policy.
///
/// Thread contract (all phase transitions are pool barriers, which provide
/// the happens-before edges): during compute, outbox (s, *) is written only
/// by worker s and inbox slot (p, i) is read/cleared only by worker p;
/// during delivery, all outboxes (*, p) are read and cleared only by worker
/// p, which is also the only writer of partition p's inboxes.
template <typename MessageT>
class MessageStore {
 public:
  using Combiner = std::function<MessageT(const MessageT&, const MessageT&)>;

  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  struct DeliveryStats {
    uint64_t delivered = 0;  // messages landed in an inbox (post-combining
                             // partials count their folded messages)
    uint64_t dropped = 0;    // messages to missing/dead vertices
  };

  MessageStore() = default;
  MessageStore(const MessageStore&) = delete;
  MessageStore& operator=(const MessageStore&) = delete;

  /// Must be called once before any Send; `combiner` may be null.
  void Configure(int num_partitions, Combiner combiner) {
    GRAFT_CHECK(num_partitions >= 1);
    num_partitions_ = num_partitions;
    combiner_ = std::move(combiner);
    const size_t p = static_cast<size_t>(num_partitions_);
    entry_outboxes_.resize(p * p);
    if (combiner_) combined_outboxes_.resize(p * p);
    inboxes_.resize(p);
    partition_sizes_.assign(p, 0);
  }

  bool combining() const { return combiner_ != nullptr; }
  int num_partitions() const { return num_partitions_; }

  /// Grows partition `p`'s inbox array to `n` vertex slots (never shrinks;
  /// slots are stable). Called by the engine whenever vertices are added.
  void EnsureInboxSlots(size_t p, size_t n) {
    if (inboxes_[p].size() < n) inboxes_[p].resize(n);
    if (partition_sizes_[p] < n) partition_sizes_[p] = n;
  }

  // ---- sender side (compute phase, called by worker `sender`) -----------

  /// Appends an unresolved (target, message) pair; the pair is resolved to a
  /// vertex slot at delivery. The only send path when no combiner is set.
  void SendEntry(int sender, size_t dest, VertexId target,
                 const MessageT& message) {
    entry_outboxes_[OutboxIndex(sender, dest)].Append({target, message});
  }

  /// Pulls the combining slot toward the cache ahead of a SendCombined with
  /// the same coordinates (no-op if the slot array hasn't grown that far).
  void PrefetchCombinedSlot(int sender, size_t dest, size_t slot) const {
    const CombinedOutbox& ob = combined_outboxes_[OutboxIndex(sender, dest)];
    if (slot < ob.slots.size()) __builtin_prefetch(&ob.slots[slot], 1);
  }

  /// Folds `message` into the sender's dense slot for destination vertex
  /// `slot` of partition `dest`. Requires a combiner.
  void SendCombined(int sender, size_t dest, size_t slot,
                    const MessageT& message) {
    CombinedOutbox& ob = combined_outboxes_[OutboxIndex(sender, dest)];
    if (ob.slots.size() <= slot) {
      size_t n = partition_sizes_[dest];
      if (n <= slot) n = slot + 1;
      ob.slots.resize(n);
    }
    // value/count/epoch live in one struct so the hot path pays one random
    // cache line per send, not three parallel-array misses.
    Slot& s = ob.slots[slot];
    if (s.epoch != ob.epoch) {
      s.epoch = ob.epoch;
      s.value = message;
      s.count = 1;
      ob.touched.push_back(static_cast<uint32_t>(slot));
    } else {
      s.value = combiner_(s.value, message);
      ++s.count;
    }
  }

  // ---- delivery side (called by the owner of partition `dest`) ----------

  /// Invokes fn(size_t slot) for every dense slot some sender combined into
  /// for partition `dest` (a slot touched by several senders is visited
  /// several times). Used by the engine's missing-vertex pre-pass to find
  /// dead targets to resurrect.
  template <typename Fn>
  void ForEachCombinedSlot(size_t dest, Fn&& fn) const {
    if (!combiner_) return;
    for (int s = 0; s < num_partitions_; ++s) {
      const CombinedOutbox& ob = combined_outboxes_[OutboxIndex(s, dest)];
      for (uint32_t slot : ob.touched) fn(static_cast<size_t>(slot));
    }
  }

  /// Invokes fn(VertexId target) for every pending unresolved entry destined
  /// for partition `dest`.
  template <typename Fn>
  void ForEachEntryTarget(size_t dest, Fn&& fn) const {
    for (int s = 0; s < num_partitions_; ++s) {
      entry_outboxes_[OutboxIndex(s, dest)].ForEach(
          [&](const Entry& e) { fn(e.first); });
    }
  }

  /// Walks every pending outbox unit destined for `dest` in the EXACT order
  /// Deliver consumes them — senders ascending; per sender, combined slots
  /// in first-touch order, then entries in append order — without draining
  /// anything. `combined(slot, value, count)` sees each pending dense slot;
  /// `entry(target, message)` each unresolved pair. The delta-checkpoint
  /// outbox log is written through this walk just before Deliver runs, so a
  /// replayed log reproduces the delivery fold order (and hence the inbox
  /// bytes) exactly.
  template <typename CombinedFn, typename EntryFn>
  void ForEachPending(size_t dest, CombinedFn&& combined,
                      EntryFn&& entry) const {
    for (int s = 0; s < num_partitions_; ++s) {
      if (combiner_) {
        const CombinedOutbox& ob = combined_outboxes_[OutboxIndex(s, dest)];
        for (uint32_t slot : ob.touched) {
          const Slot& sl = ob.slots[slot];
          combined(static_cast<size_t>(slot), sl.value, sl.count);
        }
      }
      entry_outboxes_[OutboxIndex(s, dest)].ForEach(
          [&](const Entry& e) { entry(e.first, e.second); });
    }
  }

  /// Recovery-side mirror of Deliver's combined-slot path: folds one logged
  /// sender partial into the inbox exactly as delivery would have.
  void ReplayCombined(size_t dest, size_t slot, const MessageT& partial) {
    PushCombined(dest, slot, partial);
  }

  /// Recovery-side mirror of Deliver's entry path for a resolved target.
  void ReplayEntry(size_t dest, size_t slot, const MessageT& message) {
    if (combiner_) {
      PushCombined(dest, slot, message);
    } else {
      inboxes_[dest][slot].push_back(message);
    }
  }

  /// Forgets everything delivered into partition `p`'s inboxes and its slot
  /// bookkeeping (confined recovery rebuilds the partition from scratch and
  /// re-registers slots via EnsureInboxSlots). Outboxes are untouched: the
  /// engine only resets a partition between supersteps, when every outbox
  /// has already been drained by delivery.
  void ResetPartition(size_t p) {
    inboxes_[p].clear();
    partition_sizes_[p] = 0;
  }

  /// Drains every sender's outboxes destined for `dest` into `dest`'s
  /// inboxes and clears them for reuse. `resolve(target) -> slot or kNoSlot`
  /// maps unresolved entries; `alive(slot) -> bool` re-checks dense slots
  /// (the target may have been removed by a mutation after the send).
  /// Deterministic order: senders ascending; per sender, combined slots in
  /// first-touch order, then entries in append order.
  template <typename ResolveFn, typename AliveFn>
  DeliveryStats Deliver(size_t dest, ResolveFn&& resolve, AliveFn&& alive) {
    DeliveryStats stats;
    for (int s = 0; s < num_partitions_; ++s) {
      if (combiner_) {
        CombinedOutbox& ob = combined_outboxes_[OutboxIndex(s, dest)];
        for (uint32_t slot : ob.touched) {
          const Slot& sl = ob.slots[slot];
          if (alive(static_cast<size_t>(slot))) {
            PushCombined(dest, slot, sl.value);
            stats.delivered += sl.count;
          } else {
            stats.dropped += sl.count;
          }
        }
        ++ob.epoch;
        ob.touched.clear();
      }
      ChunkedBuffer<Entry>& entries = entry_outboxes_[OutboxIndex(s, dest)];
      entries.ForEach([&](const Entry& e) {
        const size_t slot = resolve(e.first);
        if (slot == kNoSlot) {
          ++stats.dropped;
          return;
        }
        if (combiner_) {
          PushCombined(dest, slot, e.second);
        } else {
          inboxes_[dest][slot].push_back(e.second);
        }
        ++stats.delivered;
      });
      entries.Clear();
    }
    return stats;
  }

  // ---- inbox access (compute phase, owner of partition `p`) -------------

  std::vector<MessageT>& Inbox(size_t p, size_t slot) {
    return inboxes_[p][slot];
  }

  /// Empties an inbox, keeping its capacity for the next superstep.
  void ClearInbox(size_t p, size_t slot) { inboxes_[p][slot].clear(); }

  /// Overwrites an inbox with checkpointed messages (recovery path). The
  /// slot must already exist (EnsureInboxSlots ran for this partition).
  void RestoreInbox(size_t p, size_t slot, std::vector<MessageT> messages) {
    inboxes_[p][slot] = std::move(messages);
  }

 private:
  using Entry = std::pair<VertexId, MessageT>;

  /// One dense combining slot: the running combined value, the number of
  /// messages folded into it (preserves message-granular delivered/dropped
  /// accounting through combining), and the epoch tag that says whether the
  /// slot belongs to the current superstep.
  struct Slot {
    MessageT value;
    uint32_t count = 0;
    uint32_t epoch = 0;  // != CombinedOutbox::epoch (starts at 1) => stale
  };

  /// Per-(sender, dest) dense combining buffer. The epoch tag makes clearing
  /// O(touched slots) — bumping `epoch` invalidates every slot at once.
  struct CombinedOutbox {
    std::vector<Slot> slots;
    std::vector<uint32_t> touched;
    uint32_t epoch = 1;
  };

  size_t OutboxIndex(int sender, size_t dest) const {
    return static_cast<size_t>(sender) * static_cast<size_t>(num_partitions_) +
           dest;
  }

  void PushCombined(size_t dest, size_t slot, const MessageT& partial) {
    std::vector<MessageT>& box = inboxes_[dest][slot];
    if (box.empty()) {
      box.push_back(partial);
    } else {
      box[0] = combiner_(box[0], partial);
    }
  }

  int num_partitions_ = 0;
  Combiner combiner_;
  std::vector<ChunkedBuffer<Entry>> entry_outboxes_;
  std::vector<CombinedOutbox> combined_outboxes_;
  std::vector<std::vector<std::vector<MessageT>>> inboxes_;
  std::vector<size_t> partition_sizes_;
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_MESSAGE_STORE_H_
