#ifndef GRAFT_PREGEL_PHASE_H_
#define GRAFT_PREGEL_PHASE_H_

#include <atomic>
#include <cstdint>
#include <utility>

namespace graft {
namespace pregel {

/// Where the engine currently is in the BSP barrier cycle. The analysis
/// layer (src/analysis) uses these stamps to decide whether an aggregator
/// access is legal at the moment it happens — e.g. MasterCompute may only
/// SetAggregated during kMasterCompute, and vertex Aggregate() belongs to
/// kVertexCompute.
enum class EnginePhase : uint8_t {
  kIdle = 0,           // engine constructed / between Run() calls
  kSetup = 1,          // master Initialize() + checkpoint-0, before the loop
  kMutation = 2,       // topology mutation application
  kDelivery = 3,       // message delivery into partition inboxes
  kMasterCompute = 4,  // master.compute()
  kVertexCompute = 5,  // parallel vertex Compute() phase
  kAggregatorMerge = 6,  // per-worker aggregation merge
  kDone = 7,           // Run() returned
};

const char* EnginePhaseName(EnginePhase phase);

/// Lock-free (phase, superstep) stamp, written by the engine thread at each
/// phase transition and read from worker threads by the sanitizer's checked
/// contexts. Packed into one atomic so a reader never sees a phase from one
/// superstep paired with another superstep's number.
///
/// The engine only stamps when Engine::Options::phase_clock is non-null, so
/// a release-path run (sanitizer disabled) pays exactly one pointer test per
/// phase transition — no epoch stamps on the hot path (DESIGN.md §9).
class PhaseClock {
 public:
  void Set(EnginePhase phase, int64_t superstep) {
    state_.store(Pack(phase, superstep), std::memory_order_release);
  }

  EnginePhase phase() const {
    return static_cast<EnginePhase>(state_.load(std::memory_order_acquire) &
                                    0xff);
  }

  /// Superstep of the last stamp; -1 during setup (before superstep 0).
  int64_t superstep() const {
    return static_cast<int64_t>(state_.load(std::memory_order_acquire) >> 8) -
           1;
  }

  /// Atomic snapshot of both halves.
  std::pair<EnginePhase, int64_t> Read() const {
    const uint64_t s = state_.load(std::memory_order_acquire);
    return {static_cast<EnginePhase>(s & 0xff),
            static_cast<int64_t>(s >> 8) - 1};
  }

 private:
  // superstep is biased by +1 so the pre-loop value -1 packs into an
  // unsigned field; 56 bits leave room for any realistic superstep count.
  static uint64_t Pack(EnginePhase phase, int64_t superstep) {
    return (static_cast<uint64_t>(superstep + 1) << 8) |
           static_cast<uint64_t>(phase);
  }

  std::atomic<uint64_t> state_{Pack(EnginePhase::kIdle, -1)};
};

inline const char* EnginePhaseName(EnginePhase phase) {
  switch (phase) {
    case EnginePhase::kIdle:
      return "idle";
    case EnginePhase::kSetup:
      return "setup";
    case EnginePhase::kMutation:
      return "mutation";
    case EnginePhase::kDelivery:
      return "delivery";
    case EnginePhase::kMasterCompute:
      return "master_compute";
    case EnginePhase::kVertexCompute:
      return "vertex_compute";
    case EnginePhase::kAggregatorMerge:
      return "aggregator_merge";
    case EnginePhase::kDone:
      return "done";
  }
  return "?";
}

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_PHASE_H_
