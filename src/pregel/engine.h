#ifndef GRAFT_PREGEL_ENGINE_H_
#define GRAFT_PREGEL_ENGINE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_index.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pregel/computation.h"
#include "pregel/compute_context.h"
#include "pregel/job_stats.h"
#include "pregel/master.h"
#include "pregel/message_store.h"
#include "pregel/vertex.h"

namespace graft {
namespace pregel {

/// Multi-threaded BSP engine implementing the Pregel/Giraph execution
/// contract (DESIGN.md §4): hash-partitioned vertices across worker threads,
/// supersteps separated by barriers, messages sent in superstep S delivered
/// in S+1 (optionally combined), aggregators merged at superstep boundaries,
/// an optional master.compute() at the beginning of every superstep, vote-to-
/// halt termination, and Pregel-style topology mutation between supersteps.
///
/// This is the paper's "Apache Giraph" substrate: worker tasks on cluster
/// machines become worker threads, with identical superstep semantics
/// (DESIGN.md substitutions table).
///
/// Hot-path architecture (the Figure 7 denominator — DESIGN.md §4):
///  * a persistent WorkerPool executes both parallel phases of every
///    superstep on the same parked threads (no per-phase thread spawn/join);
///  * messages move through a double-buffered, chunk-backed MessageStore
///    with sender-side combining when Options::combiner is set;
///  * graph totals and the vote-to-halt termination check are maintained
///    incrementally per partition (alive/edge/awake counters updated during
///    compute and mutation), so no per-superstep O(V) scan remains.
template <JobTraits Traits>
class Engine {
 public:
  using VertexT = Vertex<Traits>;
  using VertexValue = typename Traits::VertexValue;
  using EdgeValue = typename Traits::EdgeValue;
  using Message = typename Traits::Message;
  using Combiner = std::function<Message(const Message&, const Message&)>;

  struct Options {
    /// Worker threads (Giraph worker tasks).
    int num_workers = 2;
    /// Safety cap; the MWM scenario (§4.3) relies on jobs that do NOT
    /// converge, so the cap is what ends them.
    int64_t max_supersteps = 1'000'000;
    /// Job seed: all randomness (vertex RNG streams, master RNG) derives
    /// from it, making whole runs reproducible.
    uint64_t seed = 0x6a0b5eedULL;
    /// Pregel semantics for messages sent to nonexistent vertex ids: create
    /// the vertex with `default_vertex_value` (Giraph's default resolver) or
    /// silently drop and count (what MWM wants after removing vertices).
    bool create_missing_vertices = false;
    VertexValue default_vertex_value{};
    /// Optional message combiner (associative + commutative). When set, the
    /// engine combines on the sender side: each worker folds its sends into
    /// one slot per destination vertex, and delivery merges at most
    /// num_workers partials per vertex.
    Combiner combiner;
    std::string job_id = "job";
    /// Optional shared metrics registry. When set, the engine records its
    /// phase-latency histograms and counters there (so one registry can
    /// collect engine + trace-store + capture metrics for a whole debugged
    /// run); when null the engine uses a private registry. Either way the
    /// JobStats::report carries the structured per-superstep profile.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Observes superstep boundaries; Graft's capture manager subscribes to
  /// record master contexts and per-superstep metadata without the engine
  /// knowing anything about the debugger.
  class SuperstepObserver {
   public:
    virtual ~SuperstepObserver() = default;
    /// After mutation application + message delivery, before master runs.
    /// `aggs` are the values the master (and then vertices) will see.
    virtual void OnSuperstepStart(int64_t superstep,
                                  const std::map<std::string, AggValue>& aggs) {
      (void)superstep;
      (void)aggs;
    }
    /// After master.compute() for `superstep` returned.
    virtual void OnMasterComputed(int64_t superstep,
                                  const std::map<std::string, AggValue>& aggs,
                                  bool master_halted) {
      (void)superstep;
      (void)aggs;
      (void)master_halted;
    }
    virtual void OnSuperstepEnd(int64_t superstep,
                                const SuperstepStats& stats) {
      (void)superstep;
      (void)stats;
    }
  };

  Engine(Options options, std::vector<VertexT> initial_vertices,
         ComputationFactory<Traits> computation_factory,
         MasterFactory master_factory = nullptr)
      : options_(std::move(options)),
        computation_factory_(std::move(computation_factory)),
        pool_(options_.num_workers) {
    GRAFT_CHECK(options_.num_workers >= 1);
    GRAFT_CHECK(computation_factory_ != nullptr);
    if (master_factory) master_ = master_factory();
    partitions_.resize(static_cast<size_t>(options_.num_workers));
    msg_store_.Configure(options_.num_workers, options_.combiner);
    for (VertexT& v : initial_vertices) {
      AddVertexInternal(std::move(v));
    }
    metrics_ = options_.metrics != nullptr ? options_.metrics : &own_metrics_;
    const std::vector<double> bounds = obs::DefaultLatencyBounds();
    hist_compute_ = metrics_->GetHistogram("engine.compute_seconds", bounds,
                                           options_.num_workers);
    hist_delivery_ = metrics_->GetHistogram("engine.delivery_seconds", bounds,
                                            options_.num_workers);
    hist_barrier_wait_ = metrics_->GetHistogram("engine.barrier_wait_seconds",
                                                bounds, options_.num_workers);
    hist_mutation_ = metrics_->GetHistogram("engine.mutation_seconds", bounds);
    hist_master_ = metrics_->GetHistogram("engine.master_seconds", bounds);
    hist_agg_merge_ =
        metrics_->GetHistogram("engine.aggregator_merge_seconds", bounds);
    hist_superstep_ =
        metrics_->GetHistogram("engine.superstep_seconds", bounds);
    ctr_supersteps_ = metrics_->GetCounter("engine.supersteps_total");
    ctr_messages_ = metrics_->GetCounter("engine.messages_sent_total");
    ctr_dropped_ = metrics_->GetCounter("engine.messages_dropped_total");
    ctr_vertices_computed_ =
        metrics_->GetCounter("engine.vertices_computed_total");
    gauge_pool_threads_ = metrics_->GetGauge("engine.pool.threads");
    gauge_pool_phases_ = metrics_->GetGauge("engine.pool.parallel_phases");
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the job to termination. Returns per-superstep statistics, or
  /// Status::Aborted when an exception escaped Compute() (the vertex and
  /// superstep are named in the message; any Graft traces written up to the
  /// failure remain readable — that is the point of the debugger).
  Result<JobStats> Run() {
    Stopwatch total_clock;
    JobStats stats;
    stats.report.job_id = options_.job_id;
    stats.report.num_workers = options_.num_workers;
    MasterCtx master_ctx(this);
    if (master_ != nullptr) {
      master_->Initialize(master_ctx);
      // Regular aggregators start at their initial value for superstep 0.
      ResetVisibleAggregators(/*previous_merged=*/{});
    }

    std::vector<WorkerCtx> contexts;
    std::vector<std::unique_ptr<Computation<Traits>>> computations;
    contexts.reserve(static_cast<size_t>(options_.num_workers));
    for (int w = 0; w < options_.num_workers; ++w) {
      contexts.emplace_back(this, w);
      computations.push_back(computation_factory_());
      GRAFT_CHECK(computations.back() != nullptr);
    }

    for (superstep_ = 0; superstep_ < options_.max_supersteps; ++superstep_) {
      Stopwatch superstep_clock;
      SuperstepStats ss;
      ss.superstep = superstep_;
      obs::SuperstepProfile prof;
      prof.superstep = superstep_;
      prof.workers.resize(static_cast<size_t>(options_.num_workers));
      for (int w = 0; w < options_.num_workers; ++w) {
        prof.workers[static_cast<size_t>(w)].worker = w;
      }

      // 1. Apply topology mutations requested in the previous superstep.
      {
        Stopwatch clock;
        ApplyMutations(contexts, &ss);
        prof.mutation_seconds = clock.ElapsedSeconds();
      }

      // 2. Deliver messages sent in the previous superstep (after mutations,
      //    so a message for a just-removed vertex follows the missing-vertex
      //    policy, per Pregel).
      uint64_t delivered = 0;
      {
        Stopwatch clock;
        delivered = DeliverMessages(&ss, &prof);
        prof.delivery_wall_seconds = clock.ElapsedSeconds();
      }

      // 3. Refresh global data visible to this superstep — an O(workers)
      //    sum of the incrementally-maintained partition counters (the
      //    former full-graph scan is gone).
      UpdateTotalsFromPartitions();
      for (auto* obs : observers_) {
        obs->OnSuperstepStart(superstep_, visible_aggregators_);
      }

      // 4. Master phase: sees aggregators merged at the end of superstep-1.
      if (master_ != nullptr) {
        Stopwatch clock;
        master_ctx.BeginSuperstep(superstep_);
        master_->Compute(master_ctx);
        prof.master_seconds = clock.ElapsedSeconds();
      }
      for (auto* obs : observers_) {
        obs->OnMasterComputed(superstep_, visible_aggregators_,
                              master_halted_);
      }
      if (master_halted_) {
        stats.termination = TerminationReason::kMasterHalted;
        stats.total_messages_dropped += ss.messages_dropped;
        RecordPartialSuperstep(&stats, &ss, &prof, superstep_clock);
        FinalizeStats(&stats, total_clock);
        return stats;
      }

      // 5. Termination check: nothing to do this superstep? Incremental —
      //    awake (non-halted) vertices are counted as compute and mutation
      //    toggle them, and delivery already knows whether any message
      //    landed in an inbox.
      if (!AnyVertexActive(delivered)) {
        stats.termination = TerminationReason::kAllHalted;
        stats.total_messages_dropped += ss.messages_dropped;
        RecordPartialSuperstep(&stats, &ss, &prof, superstep_clock);
        FinalizeStats(&stats, total_clock);
        return stats;
      }

      // 6. Vertex phase across all workers, on the persistent pool.
      has_compute_error_.store(false, std::memory_order_relaxed);
      compute_error_.reset();
      {
        Stopwatch clock;
        pool_.Run([&](int w) {
          RunWorker(&contexts[static_cast<size_t>(w)],
                    computations[static_cast<size_t>(w)].get(), &ss,
                    &prof.workers[static_cast<size_t>(w)]);
        });
        prof.compute_wall_seconds = clock.ElapsedSeconds();
      }
      // A worker's barrier wait is the time it idled for the slowest peer in
      // the two intra-superstep parallel phases.
      for (obs::WorkerPhaseProfile& wp : prof.workers) {
        wp.barrier_wait_seconds =
            std::max(0.0, prof.compute_wall_seconds - wp.compute_seconds) +
            std::max(0.0, prof.delivery_wall_seconds - wp.delivery_seconds);
      }
      if (compute_error_.has_value()) {
        stats.termination = TerminationReason::kComputeError;
        FinalizeStats(&stats, total_clock);
        ss.seconds = superstep_clock.ElapsedSeconds();
        prof.total_seconds = ss.seconds;
        stats.per_superstep.push_back(ss);
        stats.report.per_superstep.push_back(std::move(prof));
        return Status::Aborted(*compute_error_);
      }

      // 7. Merge per-worker aggregations into the next superstep's view.
      {
        Stopwatch clock;
        MergeAggregators(contexts);
        prof.aggregator_merge_seconds = clock.ElapsedSeconds();
      }

      ss.seconds = superstep_clock.ElapsedSeconds();
      prof.total_seconds = ss.seconds;
      stats.total_messages += ss.messages_sent;
      stats.total_messages_dropped += ss.messages_dropped;
      RecordSuperstepMetrics(prof, ss);
      stats.per_superstep.push_back(ss);
      stats.report.per_superstep.push_back(std::move(prof));
      for (auto* obs : observers_) obs->OnSuperstepEnd(superstep_, ss);
    }
    stats.termination = TerminationReason::kMaxSupersteps;
    FinalizeStats(&stats, total_clock);
    return stats;
  }

  // ---- Post-run / observer inspection -----------------------------------

  int64_t superstep() const { return superstep_; }
  uint64_t NumAliveVertices() const { return total_vertices_; }
  uint64_t NumEdges() const { return total_edges_; }
  const Options& options() const { return options_; }

  /// Pointer to a live vertex, or error when absent/removed. Stable only
  /// while the engine is not running a superstep.
  Result<const VertexT*> FindVertex(VertexId id) const {
    const Partition& p = partitions_[PartitionOf(id)];
    const uint32_t slot = p.index.Find(id);
    if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
      return Status::NotFound("vertex " + std::to_string(id) +
                              " not in graph");
    }
    return &p.vertices[slot];
  }

  /// Invokes fn(const VertexT&) on every live vertex.
  template <typename Fn>
  void ForEachVertex(Fn&& fn) const {
    for (const Partition& p : partitions_) {
      for (const VertexT& v : p.vertices) {
        if (v.alive()) fn(v);
      }
    }
  }

  /// Aggregator values as of the last completed superstep.
  const std::map<std::string, AggValue>& VisibleAggregators() const {
    return visible_aggregators_;
  }

  void AddObserver(SuperstepObserver* observer) {
    observers_.push_back(observer);
  }

  /// The registry this engine records into (Options::metrics when supplied,
  /// otherwise the engine's private registry).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Stable partition (worker) assignment of a vertex id.
  size_t PartitionOf(VertexId id) const {
    return PartitionOfHash(Mix64(static_cast<uint64_t>(id)));
  }

  /// Partition assignment from an already-mixed hash: multiply-shift range
  /// reduction (hash * P / 2^64) instead of `hash % P` — no integer divide
  /// on the per-message routing path.
  size_t PartitionOfHash(uint64_t hash) const {
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(hash) *
         static_cast<uint64_t>(options_.num_workers)) >>
        64);
  }

  /// Recounts alive vertices, live edges, and awake (non-halted) vertices
  /// with a full scan and compares against the incremental per-partition
  /// counters. Test/debug hook — the hot path never calls this; it is how
  /// the topology-mutation consistency tests prove the incremental
  /// bookkeeping right. Safe to call between supersteps (e.g. from a
  /// SuperstepObserver) or after Run().
  Status ValidateCountersByFullScan() const {
    for (size_t pi = 0; pi < partitions_.size(); ++pi) {
      const Partition& p = partitions_[pi];
      uint64_t alive = 0;
      uint64_t edges = 0;
      uint64_t awake = 0;
      for (const VertexT& v : p.vertices) {
        if (!v.alive()) continue;
        ++alive;
        edges += v.num_edges();
        if (!v.halted()) ++awake;
      }
      if (alive != p.alive_count || edges != p.edge_count ||
          awake != p.awake_count) {
        return Status::Internal(StrFormat(
            "partition %zu counter drift: alive %llu/%llu edges %llu/%llu "
            "awake %llu/%llu (counted/scanned)",
            pi, static_cast<unsigned long long>(p.alive_count),
            static_cast<unsigned long long>(alive),
            static_cast<unsigned long long>(p.edge_count),
            static_cast<unsigned long long>(edges),
            static_cast<unsigned long long>(p.awake_count),
            static_cast<unsigned long long>(awake)));
      }
    }
    return Status::OK();
  }

 private:
  struct Partition {
    std::vector<VertexT> vertices;
    FlatIndex index;  // id -> slot in `vertices`; slots are never unmapped
    // Incremental bookkeeping, owned by the partition's worker during
    // parallel phases and by the engine thread between them: counts over
    // alive vertices only. `awake_count` is the number of alive vertices
    // with halted()==false — the vote-to-halt half of the termination
    // check.
    uint64_t alive_count = 0;
    uint64_t edge_count = 0;
    uint64_t awake_count = 0;
  };

  struct MutationBuffer {
    std::vector<VertexId> remove_vertices;
    std::vector<std::tuple<VertexId, VertexId, EdgeValue>> add_edges;
    std::vector<std::pair<VertexId, VertexId>> remove_edges;

    bool Empty() const {
      return remove_vertices.empty() && add_edges.empty() &&
             remove_edges.empty();
    }
    void Clear() {
      remove_vertices.clear();
      add_edges.clear();
      remove_edges.clear();
    }
  };

  /// One staged (not-yet-routed) message. Sends are buffered per worker in
  /// batches of kSendBatch and routed together: the batch loop computes all
  /// the partition hashes first and prefetches the index cells and combining
  /// slots, so the per-message cache misses overlap instead of serializing.
  struct StagedSend {
    VertexId target;
    Message message;
  };
  static constexpr size_t kSendBatch = 64;

  /// Engine-side ComputeContext implementation, one per worker thread.
  class WorkerCtx final : public ComputeContext<Traits> {
   public:
    WorkerCtx(Engine* engine, int worker)
        : engine_(engine), worker_(worker), rng_(0) {}

    // -- engine-side hooks --
    void BeginVertex(VertexId id) {
      rng_ = Rng::ForStream(engine_->options_.seed,
                            static_cast<uint64_t>(engine_->superstep_),
                            static_cast<uint64_t>(id));
    }
    MutationBuffer& mutations() { return mutations_; }
    std::map<std::string, AggValue>& partial_aggregations() {
      return partial_;
    }
    uint64_t TakeMessagesSent() {
      uint64_t n = messages_sent_;
      messages_sent_ = 0;
      return n;
    }

    // -- ComputeContext interface --
    int64_t superstep() const override { return engine_->superstep_; }
    int64_t total_num_vertices() const override {
      return static_cast<int64_t>(engine_->total_vertices_);
    }
    int64_t total_num_edges() const override {
      return static_cast<int64_t>(engine_->total_edges_);
    }
    void SendMessage(VertexId target, const Message& message) override {
      staged_.push_back({target, message});
      ++messages_sent_;
      if (staged_.size() == kSendBatch) engine_->FlushSends(worker_, &staged_);
    }
    /// Drains any sends still staged — must run before the compute phase's
    /// barrier so every message reaches the store this superstep.
    void FlushStagedSends() {
      if (!staged_.empty()) engine_->FlushSends(worker_, &staged_);
    }
    AggValue GetAggregated(const std::string& name) const override {
      auto it = engine_->visible_aggregators_.find(name);
      return it == engine_->visible_aggregators_.end() ? AggValue{}
                                                       : it->second;
    }
    void Aggregate(const std::string& name, const AggValue& update) override {
      auto spec = engine_->aggregator_specs_.find(name);
      GRAFT_CHECK(spec != engine_->aggregator_specs_.end())
          << "Aggregate() on unregistered aggregator '" << name << "'";
      auto [it, inserted] = partial_.try_emplace(name, update);
      if (!inserted) {
        it->second = MergeAggValue(spec->second.op, it->second, update);
      }
    }
    const std::map<std::string, AggValue>& VisibleAggregators()
        const override {
      return engine_->visible_aggregators_;
    }
    Rng& rng() override { return rng_; }
    void RemoveVertexRequest(VertexId id) override {
      mutations_.remove_vertices.push_back(id);
    }
    void AddEdgeRequest(VertexId source, VertexId target,
                        const EdgeValue& value) override {
      mutations_.add_edges.emplace_back(source, target, value);
    }
    void RemoveEdgeRequest(VertexId source, VertexId target) override {
      mutations_.remove_edges.emplace_back(source, target);
    }
    int worker_index() const override { return worker_; }

   private:
    Engine* engine_;
    int worker_;
    Rng rng_;
    MutationBuffer mutations_;
    std::map<std::string, AggValue> partial_;
    std::vector<StagedSend> staged_;
    uint64_t messages_sent_ = 0;
  };

  /// Engine-side MasterContext implementation.
  class MasterCtx final : public MasterContext {
   public:
    explicit MasterCtx(Engine* engine) : engine_(engine), rng_(0) {}

    void BeginSuperstep(int64_t superstep) {
      rng_ = Rng::ForStream(engine_->options_.seed,
                            static_cast<uint64_t>(superstep),
                            0xaa57e7ULL /* master stream tag */);
    }

    int64_t superstep() const override { return engine_->superstep_; }
    int64_t total_num_vertices() const override {
      return static_cast<int64_t>(engine_->total_vertices_);
    }
    int64_t total_num_edges() const override {
      return static_cast<int64_t>(engine_->total_edges_);
    }
    Status RegisterAggregator(const std::string& name,
                              const AggregatorSpec& spec) override {
      auto [it, inserted] = engine_->aggregator_specs_.emplace(name, spec);
      (void)it;
      if (!inserted) {
        return Status::AlreadyExists("aggregator '" + name +
                                     "' already registered");
      }
      return Status::OK();
    }
    AggValue GetAggregated(const std::string& name) const override {
      auto it = engine_->visible_aggregators_.find(name);
      return it == engine_->visible_aggregators_.end() ? AggValue{}
                                                       : it->second;
    }
    Status SetAggregated(const std::string& name,
                         const AggValue& value) override {
      if (engine_->aggregator_specs_.count(name) == 0) {
        return Status::NotFound("aggregator '" + name + "' not registered");
      }
      engine_->visible_aggregators_[name] = value;
      return Status::OK();
    }
    const std::map<std::string, AggValue>& VisibleAggregators()
        const override {
      return engine_->visible_aggregators_;
    }
    void HaltComputation() override { engine_->master_halted_ = true; }
    bool IsHalted() const override { return engine_->master_halted_; }
    Rng& rng() override { return rng_; }

   private:
    Engine* engine_;
    Rng rng_;
  };

  /// Routes one batch of staged messages from `sender`'s compute thread into
  /// the message store, in send order. With a combiner each destination slot
  /// is resolved here (one hash lookup — the same lookup delivery used to
  /// pay) so combining happens sender-side; unresolvable targets (unknown
  /// ids) fall back to the entry path and follow the missing-vertex policy
  /// at delivery. There is deliberately no alive() check on resolved slots —
  /// it would cost a second random access per message; a message combined
  /// into a currently-dead slot is handled at delivery (resurrected by the
  /// missing-vertex pre-pass when the policy is on, dropped by the alive()
  /// recheck otherwise).
  ///
  /// The batch is processed in passes — hash + index-cell prefetch, probe +
  /// slot prefetch, write — so the two random memory accesses every message
  /// pays (index cell, combining slot) are in flight for the whole batch at
  /// once instead of one serialized pair per send.
  void FlushSends(int sender, std::vector<StagedSend>* batch) {
    const size_t n = batch->size();
    std::array<uint64_t, kSendBatch> hash;
    std::array<uint32_t, kSendBatch> dest;
    GRAFT_CHECK(n <= kSendBatch);
    for (size_t i = 0; i < n; ++i) {
      hash[i] = FlatIndex::Hash((*batch)[i].target);
      dest[i] = static_cast<uint32_t>(PartitionOfHash(hash[i]));
      partitions_[dest[i]].index.Prefetch(hash[i]);
    }
    if (msg_store_.combining()) {
      std::array<uint32_t, kSendBatch> slot;
      for (size_t i = 0; i < n; ++i) {
        slot[i] = partitions_[dest[i]].index.FindHashed((*batch)[i].target,
                                                        hash[i]);
        if (slot[i] != FlatIndex::kNotFound) {
          msg_store_.PrefetchCombinedSlot(sender, dest[i], slot[i]);
        }
      }
      for (size_t i = 0; i < n; ++i) {
        StagedSend& s = (*batch)[i];
        if (slot[i] != FlatIndex::kNotFound) {
          msg_store_.SendCombined(sender, dest[i], slot[i], s.message);
        } else {
          msg_store_.SendEntry(sender, dest[i], s.target, s.message);
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        StagedSend& s = (*batch)[i];
        msg_store_.SendEntry(sender, dest[i], s.target, s.message);
      }
    }
    batch->clear();
  }

  void AddVertexInternal(VertexT vertex) {
    const size_t part = PartitionOf(vertex.id());
    Partition& p = partitions_[part];
    p.alive_count += 1;
    p.edge_count += vertex.num_edges();
    if (!vertex.halted()) p.awake_count += 1;
    bool inserted = false;
    const uint32_t slot = p.index.InsertOrFind(
        vertex.id(), static_cast<uint32_t>(p.vertices.size()), &inserted);
    if (inserted) {
      p.vertices.push_back(std::move(vertex));
    } else {
      // Resurrect a removed slot; adding a live duplicate is an input error.
      VertexT& dst = p.vertices[slot];
      GRAFT_CHECK(!dst.alive())
          << "duplicate vertex id " << vertex.id() << " in input graph";
      dst = std::move(vertex);
      // The slot's inbox may hold messages delivered before the vertex was
      // removed; a resurrected vertex must not inherit them.
      msg_store_.ClearInbox(part, slot);
    }
    msg_store_.EnsureInboxSlots(part, p.vertices.size());
  }

  void ApplyMutations(std::vector<WorkerCtx>& contexts, SuperstepStats* ss) {
    for (WorkerCtx& ctx : contexts) {
      MutationBuffer& m = ctx.mutations();
      if (m.Empty()) continue;
      for (const auto& [source, target, value] : m.add_edges) {
        VertexT* v = FindMutableVertex(source);
        if ((v == nullptr || !v->alive()) &&
            options_.create_missing_vertices) {
          AddVertexInternal(
              VertexT(source, options_.default_vertex_value, {}));
          v = FindMutableVertex(source);
        }
        if (v != nullptr && v->alive()) {
          v->AddEdge(target, value);
          partitions_[PartitionOf(source)].edge_count += 1;
          ++ss->edges_added;
        }
      }
      for (const auto& [source, target] : m.remove_edges) {
        VertexT* v = FindMutableVertex(source);
        if (v != nullptr && v->alive()) {
          const size_t removed = v->RemoveEdgesTo(target);
          partitions_[PartitionOf(source)].edge_count -= removed;
          ss->edges_removed += removed;
        }
      }
      for (VertexId id : m.remove_vertices) {
        VertexT* v = FindMutableVertex(id);
        if (v != nullptr && v->alive()) {
          Partition& p = partitions_[PartitionOf(id)];
          p.alive_count -= 1;
          p.edge_count -= v->num_edges();
          if (!v->halted()) p.awake_count -= 1;
          v->set_alive(false);
          v->mutable_edges()->clear();
          ++ss->vertices_removed;
        }
      }
      m.Clear();
    }
  }

  VertexT* FindMutableVertex(VertexId id) {
    Partition& p = partitions_[PartitionOf(id)];
    const uint32_t slot = p.index.Find(id);
    if (slot == FlatIndex::kNotFound) return nullptr;
    return &p.vertices[slot];
  }

  /// Drains the message store into this superstep's inboxes on the worker
  /// pool — each worker handles exactly its own partition, including the
  /// missing-vertex creation pass (partition-local by construction, since a
  /// pending target hashes to the partition that will create it; one index
  /// lookup per pending target). Returns the number of messages delivered
  /// into inboxes — the "messages in flight" half of the termination check.
  uint64_t DeliverMessages(SuperstepStats* ss, obs::SuperstepProfile* prof) {
    using Stats = typename MessageStore<Message>::DeliveryStats;
    std::vector<Stats> per_worker(static_cast<size_t>(options_.num_workers));
    pool_.Run([&](int w) {
      Stopwatch clock;
      const size_t part = static_cast<size_t>(w);
      Partition& p = partitions_[part];
      if (options_.create_missing_vertices) {
        msg_store_.ForEachCombinedSlot(part, [&](size_t slot) {
          // A combined slot always names an indexed vertex; it only needs
          // resurrecting when a mutation removed the vertex after the send.
          if (!p.vertices[slot].alive()) {
            AddVertexInternal(VertexT(p.vertices[slot].id(),
                                      options_.default_vertex_value, {}));
          }
        });
        msg_store_.ForEachEntryTarget(part, [&](VertexId target) {
          const uint32_t slot = p.index.Find(target);
          if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
            AddVertexInternal(
                VertexT(target, options_.default_vertex_value, {}));
          }
        });
      }
      per_worker[part] = msg_store_.Deliver(
          part,
          [&](VertexId target) -> size_t {
            const uint32_t slot = p.index.Find(target);
            if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
              return MessageStore<Message>::kNoSlot;
            }
            return slot;
          },
          [&](size_t slot) { return p.vertices[slot].alive(); });
      prof->workers[part].delivery_seconds = clock.ElapsedSeconds();
    });
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    for (const Stats& s : per_worker) {
      delivered += s.delivered;
      dropped += s.dropped;
    }
    ss->messages_dropped = dropped;
    return delivered;
  }

  /// O(workers) totals refresh from the incremental partition counters.
  void UpdateTotalsFromPartitions() {
    uint64_t vertices = 0;
    uint64_t edges = 0;
    for (const Partition& p : partitions_) {
      vertices += p.alive_count;
      edges += p.edge_count;
    }
    total_vertices_ = vertices;
    total_edges_ = edges;
  }

  /// True when any vertex will run Compute() this superstep: a message was
  /// delivered into an inbox, or some alive vertex has not voted to halt.
  /// O(workers); replaces the former full-graph scan.
  bool AnyVertexActive(uint64_t delivered_messages) const {
    if (delivered_messages > 0) return true;
    for (const Partition& p : partitions_) {
      if (p.awake_count > 0) return true;
    }
    return false;
  }

  void RunWorker(WorkerCtx* ctx, Computation<Traits>* computation,
                 SuperstepStats* ss, obs::WorkerPhaseProfile* wp) {
    Stopwatch clock;
    const size_t part = static_cast<size_t>(ctx->worker_index());
    Partition& p = partitions_[part];
    uint64_t active = 0;
    int64_t edge_delta = 0;
    int64_t awake_delta = 0;
    for (size_t i = 0; i < p.vertices.size(); ++i) {
      VertexT& v = p.vertices[i];
      if (!v.alive()) continue;
      std::vector<Message>& inbox = msg_store_.Inbox(part, i);
      if (v.halted() && inbox.empty()) continue;
      const bool was_awake = !v.halted();
      v.Activate();
      ++active;
      const int64_t edges_before = static_cast<int64_t>(v.num_edges());
      ctx->BeginVertex(v.id());
      bool failed = false;
      try {
        computation->Compute(*ctx, v, inbox);
      } catch (const std::exception& e) {
        RecordComputeError(v.id(), e.what());
        failed = true;
      } catch (...) {
        RecordComputeError(v.id(), "(non-standard exception)");
        failed = true;
      }
      msg_store_.ClearInbox(part, i);
      // Incremental bookkeeping: net local edge mutations and the vote-to-
      // halt transition of this vertex.
      edge_delta += static_cast<int64_t>(v.num_edges()) - edges_before;
      if (was_awake && v.halted()) --awake_delta;
      if (!was_awake && !v.halted()) ++awake_delta;
      if (failed || has_compute_error_.load(std::memory_order_relaxed)) {
        break;  // this or another worker failed
      }
    }
    ctx->FlushStagedSends();
    p.edge_count =
        static_cast<uint64_t>(static_cast<int64_t>(p.edge_count) + edge_delta);
    p.awake_count = static_cast<uint64_t>(
        static_cast<int64_t>(p.awake_count) + awake_delta);
    const uint64_t sent = ctx->TakeMessagesSent();
    wp->compute_seconds = clock.ElapsedSeconds();
    wp->vertices_computed = active;
    wp->messages_sent = sent;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ss->active_vertices += active;
    ss->messages_sent += sent;
  }

  void RecordComputeError(VertexId id, const std::string& what) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (!compute_error_.has_value()) {
      compute_error_ = StrFormat(
          "exception escaped Compute() at superstep %lld, vertex %lld: %s",
          static_cast<long long>(superstep_), static_cast<long long>(id),
          what.c_str());
    }
    has_compute_error_.store(true, std::memory_order_relaxed);
  }

  void MergeAggregators(std::vector<WorkerCtx>& contexts) {
    // Start from initial (regular) or carried-forward (persistent) values.
    std::map<std::string, AggValue> merged;
    for (const auto& [name, spec] : aggregator_specs_) {
      if (spec.persistent) {
        auto it = visible_aggregators_.find(name);
        merged[name] =
            it == visible_aggregators_.end() ? spec.initial : it->second;
      } else {
        merged[name] = spec.initial;
      }
    }
    for (WorkerCtx& ctx : contexts) {
      for (auto& [name, update] : ctx.partial_aggregations()) {
        auto spec = aggregator_specs_.find(name);
        merged[name] = MergeAggValue(spec->second.op, merged[name], update);
      }
      ctx.partial_aggregations().clear();
    }
    visible_aggregators_ = std::move(merged);
  }

  void ResetVisibleAggregators(
      const std::map<std::string, AggValue>& previous_merged) {
    visible_aggregators_.clear();
    for (const auto& [name, spec] : aggregator_specs_) {
      auto it = previous_merged.find(name);
      visible_aggregators_[name] =
          it == previous_merged.end() ? spec.initial : it->second;
    }
  }

  /// Completes the bookkeeping of a superstep that terminated the job
  /// before its vertex phase (master halt / all halted): the run report
  /// keeps the partial superstep's mutation/delivery/master timings instead
  /// of silently dropping them. Metrics histograms and counters only cover
  /// completed supersteps, so they are not recorded here.
  void RecordPartialSuperstep(JobStats* stats, SuperstepStats* ss,
                              obs::SuperstepProfile* prof,
                              const Stopwatch& superstep_clock) {
    ss->seconds = superstep_clock.ElapsedSeconds();
    prof->total_seconds = ss->seconds;
    prof->partial = true;
    for (obs::WorkerPhaseProfile& wp : prof->workers) {
      wp.barrier_wait_seconds =
          std::max(0.0, prof->delivery_wall_seconds - wp.delivery_seconds);
    }
    stats->per_superstep.push_back(*ss);
    stats->report.per_superstep.push_back(std::move(*prof));
  }

  void FinalizeStats(JobStats* stats, const Stopwatch& clock) {
    UpdateTotalsFromPartitions();
    stats->supersteps = superstep_;
    stats->final_vertices = total_vertices_;
    stats->final_edges = total_edges_;
    stats->total_seconds = clock.ElapsedSeconds();
    stats->report.supersteps = superstep_;
    stats->report.total_seconds = stats->total_seconds;
    // Pool-reuse evidence for the run report consumers: a fixed thread
    // count across a growing number of parallel phases means no per-phase
    // spawn happened.
    gauge_pool_threads_->Set(static_cast<double>(options_.num_workers - 1));
    gauge_pool_phases_->Set(static_cast<double>(pool_.generations()));
  }

  /// Records the completed superstep's phase timings into the metrics
  /// registry (the per-worker shards were written lock-free during the
  /// parallel phases; histograms merge shards on export).
  void RecordSuperstepMetrics(const obs::SuperstepProfile& prof,
                              const SuperstepStats& ss) {
    hist_mutation_->Record(prof.mutation_seconds);
    hist_master_->Record(prof.master_seconds);
    hist_agg_merge_->Record(prof.aggregator_merge_seconds);
    hist_superstep_->Record(prof.total_seconds);
    for (const obs::WorkerPhaseProfile& wp : prof.workers) {
      hist_compute_->Record(wp.compute_seconds, wp.worker);
      hist_delivery_->Record(wp.delivery_seconds, wp.worker);
      hist_barrier_wait_->Record(wp.barrier_wait_seconds, wp.worker);
    }
    ctr_supersteps_->Increment();
    ctr_messages_->Increment(ss.messages_sent);
    ctr_dropped_->Increment(ss.messages_dropped);
    ctr_vertices_computed_->Increment(ss.active_vertices);
  }

  Options options_;
  ComputationFactory<Traits> computation_factory_;
  std::unique_ptr<MasterCompute> master_;
  WorkerPool pool_;
  MessageStore<Message> msg_store_;
  std::vector<Partition> partitions_;
  std::vector<SuperstepObserver*> observers_;

  std::unordered_map<std::string, AggregatorSpec> aggregator_specs_;
  std::map<std::string, AggValue> visible_aggregators_;

  int64_t superstep_ = 0;
  uint64_t total_vertices_ = 0;
  uint64_t total_edges_ = 0;
  bool master_halted_ = false;

  std::mutex stats_mutex_;
  std::optional<std::string> compute_error_;
  std::atomic<bool> has_compute_error_{false};

  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* hist_compute_ = nullptr;
  obs::Histogram* hist_delivery_ = nullptr;
  obs::Histogram* hist_barrier_wait_ = nullptr;
  obs::Histogram* hist_mutation_ = nullptr;
  obs::Histogram* hist_master_ = nullptr;
  obs::Histogram* hist_agg_merge_ = nullptr;
  obs::Histogram* hist_superstep_ = nullptr;
  obs::Counter* ctr_supersteps_ = nullptr;
  obs::Counter* ctr_messages_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_vertices_computed_ = nullptr;
  obs::Gauge* gauge_pool_threads_ = nullptr;
  obs::Gauge* gauge_pool_phases_ = nullptr;
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_ENGINE_H_
