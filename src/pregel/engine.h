#ifndef GRAFT_PREGEL_ENGINE_H_
#define GRAFT_PREGEL_ENGINE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/flat_index.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "obs/event_journal.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pregel/checkpoint.h"
#include "pregel/computation.h"
#include "pregel/compute_context.h"
#include "pregel/job_stats.h"
#include "pregel/master.h"
#include "pregel/message_store.h"
#include "pregel/phase.h"
#include "pregel/vertex.h"

namespace graft {
namespace pregel {

/// Multi-threaded BSP engine implementing the Pregel/Giraph execution
/// contract (DESIGN.md §4): hash-partitioned vertices across worker threads,
/// supersteps separated by barriers, messages sent in superstep S delivered
/// in S+1 (optionally combined), aggregators merged at superstep boundaries,
/// an optional master.compute() at the beginning of every superstep, vote-to-
/// halt termination, and Pregel-style topology mutation between supersteps.
///
/// This is the paper's "Apache Giraph" substrate: worker tasks on cluster
/// machines become worker threads, with identical superstep semantics
/// (DESIGN.md substitutions table).
///
/// Hot-path architecture (the Figure 7 denominator — DESIGN.md §4):
///  * a persistent WorkerPool executes both parallel phases of every
///    superstep on the same parked threads (no per-phase thread spawn/join);
///  * messages move through a double-buffered, chunk-backed MessageStore
///    with sender-side combining when Options::combiner is set;
///  * graph totals and the vote-to-halt termination check are maintained
///    incrementally per partition (alive/edge/awake counters updated during
///    compute and mutation), so no per-superstep O(V) scan remains.
template <JobTraits Traits>
class Engine {
 public:
  using VertexT = Vertex<Traits>;
  using VertexValue = typename Traits::VertexValue;
  using EdgeValue = typename Traits::EdgeValue;
  using Message = typename Traits::Message;
  using Combiner = std::function<Message(const Message&, const Message&)>;

  struct Options {
    /// Worker threads (Giraph worker tasks).
    int num_workers = 2;
    /// Safety cap; the MWM scenario (§4.3) relies on jobs that do NOT
    /// converge, so the cap is what ends them.
    int64_t max_supersteps = 1'000'000;
    /// Job seed: all randomness (vertex RNG streams, master RNG) derives
    /// from it, making whole runs reproducible.
    uint64_t seed = 0x6a0b5eedULL;
    /// Pregel semantics for messages sent to nonexistent vertex ids: create
    /// the vertex with `default_vertex_value` (Giraph's default resolver) or
    /// silently drop and count (what MWM wants after removing vertices).
    bool create_missing_vertices = false;
    VertexValue default_vertex_value{};
    /// Optional message combiner (associative + commutative). When set, the
    /// engine combines on the sender side: each worker folds its sends into
    /// one slot per destination vertex, and delivery merges at most
    /// num_workers partials per vertex.
    Combiner combiner;
    std::string job_id = "job";
    /// Optional shared metrics registry. When set, the engine records its
    /// phase-latency histograms and counters there (so one registry can
    /// collect engine + trace-store + capture metrics for a whole debugged
    /// run); when null the engine uses a private registry. Either way the
    /// JobStats::report carries the structured per-superstep profile.
    obs::MetricsRegistry* metrics = nullptr;
    /// Superstep checkpointing (DESIGN.md "Fault tolerance & recovery");
    /// disabled unless interval > 0 and a store is set. Application code
    /// should configure this through JobSpec, which defaults the store.
    CheckpointOptions checkpoint;
    /// Optional deterministic fault injector consulted at the start of each
    /// worker's compute and delivery slice. Injected faults abort the run
    /// with Status::Unavailable — the retryable class JobRunner recovers
    /// from. Store-level faults are injected via FaultInjectingTraceStore.
    FaultInjector* fault_injector = nullptr;
    /// Optional phase clock the engine stamps at every barrier-cycle
    /// transition (setup, mutation, delivery, master, compute, merge). The
    /// BspSanitizer's checked contexts read it to validate aggregator access
    /// timing. Null (the default) skips all stamping — the release path
    /// pays one pointer test per phase, nothing per vertex or message.
    PhaseClock* phase_clock = nullptr;
    /// Optional structured event journal (DESIGN.md §11). When set, the
    /// engine emits span events per phase and per worker slice — O(workers)
    /// events per superstep, nothing per vertex or message. Null (the
    /// default) costs one pointer test per phase.
    obs::EventJournal* journal = nullptr;
    /// Optional live-progress sink: when set, the engine publishes a
    /// RunReport snapshot at every superstep barrier so the telemetry
    /// server's /jobs/<id>/report advances while the job runs. Application
    /// code configures this through JobSpec::telemetry.
    obs::JobEntry* telemetry = nullptr;
  };

  /// Observes superstep boundaries; Graft's capture manager subscribes to
  /// record master contexts and per-superstep metadata without the engine
  /// knowing anything about the debugger.
  class SuperstepObserver {
   public:
    virtual ~SuperstepObserver() = default;
    /// After mutation application + message delivery, before master runs.
    /// `aggs` are the values the master (and then vertices) will see.
    virtual void OnSuperstepStart(int64_t superstep,
                                  const std::map<std::string, AggValue>& aggs) {
      (void)superstep;
      (void)aggs;
    }
    /// After master.compute() for `superstep` returned.
    virtual void OnMasterComputed(int64_t superstep,
                                  const std::map<std::string, AggValue>& aggs,
                                  bool master_halted) {
      (void)superstep;
      (void)aggs;
      (void)master_halted;
    }
    virtual void OnSuperstepEnd(int64_t superstep,
                                const SuperstepStats& stats) {
      (void)superstep;
      (void)stats;
    }
    /// After a checkpoint for `superstep` was committed. The capture layer
    /// snapshots its counters here so a recovery can rewind them to the
    /// checkpoint's state.
    virtual void OnCheckpoint(int64_t superstep) { (void)superstep; }
  };

  Engine(Options options, std::vector<VertexT> initial_vertices,
         ComputationFactory<Traits> computation_factory,
         MasterFactory master_factory = nullptr)
      : options_(std::move(options)),
        computation_factory_(std::move(computation_factory)),
        pool_(options_.num_workers) {
    GRAFT_CHECK(options_.num_workers >= 1);
    GRAFT_CHECK(computation_factory_ != nullptr);
    if (master_factory) master_ = master_factory();
    partitions_.resize(static_cast<size_t>(options_.num_workers));
    msg_store_.Configure(options_.num_workers, options_.combiner);
    for (VertexT& v : initial_vertices) {
      AddVertexInternal(std::move(v));
    }
    metrics_ = options_.metrics != nullptr ? options_.metrics : &own_metrics_;
    const std::vector<double> bounds = obs::DefaultLatencyBounds();
    hist_compute_ = metrics_->GetHistogram("engine.compute_seconds", bounds,
                                           options_.num_workers);
    hist_delivery_ = metrics_->GetHistogram("engine.delivery_seconds", bounds,
                                            options_.num_workers);
    hist_barrier_wait_ = metrics_->GetHistogram("engine.barrier_wait_seconds",
                                                bounds, options_.num_workers);
    hist_mutation_ = metrics_->GetHistogram("engine.mutation_seconds", bounds);
    hist_master_ = metrics_->GetHistogram("engine.master_seconds", bounds);
    hist_agg_merge_ =
        metrics_->GetHistogram("engine.aggregator_merge_seconds", bounds);
    hist_superstep_ =
        metrics_->GetHistogram("engine.superstep_seconds", bounds);
    ctr_supersteps_ = metrics_->GetCounter("engine.supersteps_total");
    ctr_messages_ = metrics_->GetCounter("engine.messages_sent_total");
    ctr_dropped_ = metrics_->GetCounter("engine.messages_dropped_total");
    ctr_vertices_computed_ =
        metrics_->GetCounter("engine.vertices_computed_total");
    gauge_pool_threads_ = metrics_->GetGauge("engine.pool.threads");
    gauge_pool_phases_ = metrics_->GetGauge("engine.pool.parallel_phases");
    ctr_checkpoints_ = metrics_->GetCounter("engine.checkpoints_total");
    ctr_checkpoint_bytes_ =
        metrics_->GetCounter("engine.checkpoint_bytes_total");
    gauge_checkpoint_seconds_ =
        metrics_->GetGauge("engine.checkpoint_seconds");
    gauge_restore_seconds_ = metrics_->GetGauge("engine.restore_seconds");
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the job to termination. Returns per-superstep statistics, or
  /// Status::Aborted when an exception escaped Compute() (the vertex and
  /// superstep are named in the message; any Graft traces written up to the
  /// failure remain readable — that is the point of the debugger).
  Result<JobStats> Run() {
    Stopwatch total_clock;
    JobStats stats;
    stats.report.job_id = options_.job_id;
    stats.report.num_workers = options_.num_workers;
    // A recovered run reports whole-job statistics: seed them with the
    // prefix restored from the checkpoint (empty on a fresh run).
    stats.per_superstep = restored_per_superstep_;
    stats.total_messages = restored_total_messages_;
    stats.total_messages_dropped = restored_total_messages_dropped_;
    StampPhase(EnginePhase::kSetup, -1);
    MasterCtx master_ctx(this);
    if (master_ != nullptr) {
      master_->Initialize(master_ctx);
      // Regular aggregators start at their initial value for superstep 0.
      ResetVisibleAggregators(/*previous_merged=*/{});
    }
    if (recovered_) {
      // The aggregator values the checkpointed superstep saw (persistent
      // aggregators and master SetAggregated state included); specs were
      // just re-registered by Initialize above.
      visible_aggregators_ = restored_aggregators_;
    } else if (options_.checkpoint.enabled()) {
      // Checkpoint 0: the loaded input graph, so any later failure —
      // including one before the first interval boundary — has a recovery
      // point.
      GRAFT_RETURN_NOT_OK(WriteCheckpoint(0, 0, 0, stats));
      for (auto* obs : observers_) obs->OnCheckpoint(0);
    }

    std::vector<WorkerCtx> contexts;
    std::vector<std::unique_ptr<Computation<Traits>>> computations;
    contexts.reserve(static_cast<size_t>(options_.num_workers));
    for (int w = 0; w < options_.num_workers; ++w) {
      contexts.emplace_back(this, w);
      computations.push_back(computation_factory_());
      GRAFT_CHECK(computations.back() != nullptr);
    }

    for (superstep_ = resume_superstep_; superstep_ < options_.max_supersteps;
         ++superstep_) {
      if (options_.fault_injector != nullptr) {
        options_.fault_injector->set_current_superstep(superstep_);
      }
      Stopwatch superstep_clock;
      SuperstepStats ss;
      ss.superstep = superstep_;
      obs::SuperstepProfile prof;
      prof.superstep = superstep_;
      prof.workers.resize(static_cast<size_t>(options_.num_workers));
      for (int w = 0; w < options_.num_workers; ++w) {
        prof.workers[static_cast<size_t>(w)].worker = w;
      }
      // RAII: published on every exit from this iteration, including the
      // early termination returns below.
      obs::JournalSpan superstep_span(options_.journal, "superstep", "engine",
                                      -1, superstep_);

      // 1. Apply topology mutations requested in the previous superstep.
      {
        StampPhase(EnginePhase::kMutation, superstep_);
        obs::JournalSpan span(options_.journal, "mutation", "engine", -1,
                              superstep_);
        Stopwatch clock;
        ApplyMutations(contexts, &ss);
        prof.mutation_seconds = clock.ElapsedSeconds();
      }

      // 2. Deliver messages sent in the previous superstep (after mutations,
      //    so a message for a just-removed vertex follows the missing-vertex
      //    policy, per Pregel).
      uint64_t delivered = 0;
      {
        StampPhase(EnginePhase::kDelivery, superstep_);
        obs::JournalSpan span(options_.journal, "delivery", "engine", -1,
                              superstep_);
        Stopwatch clock;
        delivered = DeliverMessages(&ss, &prof);
        prof.delivery_wall_seconds = clock.ElapsedSeconds();
        span.End(delivered);
      }
      // On the resumed superstep the delivery above drained nothing (the
      // outboxes died with the failed run) — the checkpointed inbox contents
      // and their delivery accounting stand in for it.
      delivered += std::exchange(restored_pending_, uint64_t{0});
      ss.messages_dropped += std::exchange(restored_dropped_, uint64_t{0});
      if (has_abort_.load(std::memory_order_relaxed)) {
        return TakeAbortStatus();
      }

      // 3. Refresh global data visible to this superstep — an O(workers)
      //    sum of the incrementally-maintained partition counters (the
      //    former full-graph scan is gone).
      UpdateTotalsFromPartitions();

      // Checkpoint boundary: state at the start of superstep S (mutations
      // applied, inboxes filled, master not yet run) — exactly what
      // RestoreFromCheckpoint rebuilds. Skipped at the resume superstep
      // itself: that checkpoint is already committed.
      if (options_.checkpoint.enabled() && superstep_ > 0 &&
          superstep_ % options_.checkpoint.interval == 0 &&
          superstep_ != resume_superstep_) {
        GRAFT_RETURN_NOT_OK(
            WriteCheckpoint(superstep_, delivered, ss.messages_dropped,
                            stats));
        for (auto* obs : observers_) obs->OnCheckpoint(superstep_);
      }

      for (auto* obs : observers_) {
        obs->OnSuperstepStart(superstep_, visible_aggregators_);
      }

      // 4. Master phase: sees aggregators merged at the end of superstep-1.
      StampPhase(EnginePhase::kMasterCompute, superstep_);
      if (master_ != nullptr) {
        obs::JournalSpan span(options_.journal, "master", "engine", -1,
                              superstep_);
        Stopwatch clock;
        master_ctx.BeginSuperstep(superstep_);
        master_->Compute(master_ctx);
        prof.master_seconds = clock.ElapsedSeconds();
      }
      for (auto* obs : observers_) {
        obs->OnMasterComputed(superstep_, visible_aggregators_,
                              master_halted_);
      }
      // An observer (e.g. the master-trace capture path) may have hit an
      // infrastructure failure.
      if (has_abort_.load(std::memory_order_relaxed)) {
        return TakeAbortStatus();
      }
      if (master_halted_) {
        stats.termination = TerminationReason::kMasterHalted;
        stats.total_messages_dropped += ss.messages_dropped;
        RecordPartialSuperstep(&stats, &ss, &prof, superstep_clock);
        FinalizeStats(&stats, total_clock);
        return stats;
      }

      // 5. Termination check: nothing to do this superstep? Incremental —
      //    awake (non-halted) vertices are counted as compute and mutation
      //    toggle them, and delivery already knows whether any message
      //    landed in an inbox.
      if (!AnyVertexActive(delivered)) {
        stats.termination = TerminationReason::kAllHalted;
        stats.total_messages_dropped += ss.messages_dropped;
        RecordPartialSuperstep(&stats, &ss, &prof, superstep_clock);
        FinalizeStats(&stats, total_clock);
        return stats;
      }

      // 6. Vertex phase across all workers, on the persistent pool.
      has_compute_error_.store(false, std::memory_order_relaxed);
      compute_error_.reset();
      {
        StampPhase(EnginePhase::kVertexCompute, superstep_);
        obs::JournalSpan span(options_.journal, "compute", "engine", -1,
                              superstep_);
        Stopwatch clock;
        pool_.Run([&](int w) {
          RunWorker(&contexts[static_cast<size_t>(w)],
                    computations[static_cast<size_t>(w)].get(), &ss,
                    &prof.workers[static_cast<size_t>(w)]);
        });
        prof.compute_wall_seconds = clock.ElapsedSeconds();
      }
      // A worker's barrier wait is the time it idled for the slowest peer in
      // the two intra-superstep parallel phases.
      for (obs::WorkerPhaseProfile& wp : prof.workers) {
        wp.barrier_wait_seconds =
            std::max(0.0, prof.compute_wall_seconds - wp.compute_seconds) +
            std::max(0.0, prof.delivery_wall_seconds - wp.delivery_seconds);
      }
      // Infrastructure aborts (injected fault, capture I/O failure) outrank
      // compute errors: they carry the retryable status class JobRunner
      // keys its recovery loop on.
      if (has_abort_.load(std::memory_order_relaxed)) {
        return TakeAbortStatus();
      }
      if (compute_error_.has_value()) {
        stats.termination = TerminationReason::kComputeError;
        FinalizeStats(&stats, total_clock);
        ss.seconds = superstep_clock.ElapsedSeconds();
        prof.total_seconds = ss.seconds;
        stats.per_superstep.push_back(ss);
        stats.report.per_superstep.push_back(std::move(prof));
        return Status::Aborted(*compute_error_);
      }

      // 7. Merge per-worker aggregations into the next superstep's view.
      {
        StampPhase(EnginePhase::kAggregatorMerge, superstep_);
        obs::JournalSpan span(options_.journal, "aggregator_merge", "engine",
                              -1, superstep_);
        Stopwatch clock;
        MergeAggregators(contexts);
        prof.aggregator_merge_seconds = clock.ElapsedSeconds();
      }

      ss.seconds = superstep_clock.ElapsedSeconds();
      prof.total_seconds = ss.seconds;
      stats.total_messages += ss.messages_sent;
      stats.total_messages_dropped += ss.messages_dropped;
      RecordSuperstepMetrics(prof, ss);
      stats.per_superstep.push_back(ss);
      stats.report.per_superstep.push_back(std::move(prof));
      superstep_span.End(ss.messages_sent);
      PublishProgress(stats, total_clock);
      for (auto* obs : observers_) obs->OnSuperstepEnd(superstep_, ss);
    }
    stats.termination = TerminationReason::kMaxSupersteps;
    FinalizeStats(&stats, total_clock);
    return stats;
  }

  // ---- Post-run / observer inspection -----------------------------------

  int64_t superstep() const { return superstep_; }
  uint64_t NumAliveVertices() const { return total_vertices_; }
  uint64_t NumEdges() const { return total_edges_; }
  const Options& options() const { return options_; }

  /// Pointer to a live vertex, or error when absent/removed. Stable only
  /// while the engine is not running a superstep.
  Result<const VertexT*> FindVertex(VertexId id) const {
    const Partition& p = partitions_[PartitionOf(id)];
    const uint32_t slot = p.index.Find(id);
    if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
      return Status::NotFound("vertex " + std::to_string(id) +
                              " not in graph");
    }
    return &p.vertices[slot];
  }

  /// Invokes fn(const VertexT&) on every live vertex.
  template <typename Fn>
  void ForEachVertex(Fn&& fn) const {
    for (const Partition& p : partitions_) {
      for (const VertexT& v : p.vertices) {
        if (v.alive()) fn(v);
      }
    }
  }

  /// Aggregator values as of the last completed superstep.
  const std::map<std::string, AggValue>& VisibleAggregators() const {
    return visible_aggregators_;
  }

  void AddObserver(SuperstepObserver* observer) {
    observers_.push_back(observer);
  }

  /// Records an infrastructure failure (injected fault, capture I/O error)
  /// and asks the run to wind down: Run() returns `status` at the next
  /// abort checkpoint. First abort wins. Thread-safe — callable from worker
  /// threads and observers.
  void RequestAbort(Status status) {
    GRAFT_CHECK(!status.ok());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (!abort_status_.has_value()) abort_status_ = std::move(status);
    }
    has_abort_.store(true, std::memory_order_relaxed);
  }

  /// Rebuilds this engine from the committed checkpoint `superstep` written
  /// by a previous engine of the same job (same num_workers, job_id, seed,
  /// combiner — partition assignment must match or restore fails). The
  /// engine must be freshly constructed with no vertices. On success, Run()
  /// resumes by executing `superstep` against the restored inboxes and
  /// reports whole-job statistics including the restored prefix.
  Status RestoreFromCheckpoint(int64_t superstep) {
    GRAFT_CHECK(options_.checkpoint.enabled())
        << "RestoreFromCheckpoint without checkpoint options";
    for (const Partition& p : partitions_) {
      GRAFT_CHECK(p.vertices.empty())
          << "RestoreFromCheckpoint on a non-empty engine";
    }
    Stopwatch clock;
    obs::JournalSpan span(options_.journal, "checkpoint.restore",
                          "checkpoint", -1, superstep);
    TraceStore& store = *options_.checkpoint.store;
    GRAFT_ASSIGN_OR_RETURN(
        std::vector<std::string> meta_records,
        store.ReadAll(CheckpointMetaFile(options_.job_id, superstep)));
    if (meta_records.size() != 1) {
      return Status::Internal(
          StrFormat("checkpoint meta has %zu records, want 1",
                    meta_records.size()));
    }
    GRAFT_ASSIGN_OR_RETURN(CheckpointMeta meta,
                           CheckpointMeta::Parse(meta_records[0]));
    if (meta.num_partitions != options_.num_workers) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint has %d partitions but engine has %d workers",
          meta.num_partitions, options_.num_workers));
    }
    for (int part = 0; part < options_.num_workers; ++part) {
      GRAFT_ASSIGN_OR_RETURN(
          std::vector<std::string> records,
          store.ReadAll(
              CheckpointPartFile(options_.job_id, superstep, part)));
      if (records.size() != 1) {
        return Status::Internal(StrFormat(
            "checkpoint part %d has %zu records, want 1", part,
            records.size()));
      }
      BinaryReader r(records[0]);
      GRAFT_ASSIGN_OR_RETURN(uint64_t alive, r.ReadVarint());
      for (uint64_t i = 0; i < alive; ++i) {
        GRAFT_ASSIGN_OR_RETURN(int64_t id, r.ReadSignedVarint());
        GRAFT_ASSIGN_OR_RETURN(VertexValue value, VertexValue::Read(r));
        GRAFT_ASSIGN_OR_RETURN(bool halted, r.ReadBool());
        GRAFT_ASSIGN_OR_RETURN(uint64_t num_edges, r.ReadVarint());
        std::vector<typename VertexT::EdgeT> edges;
        edges.reserve(num_edges);
        for (uint64_t e = 0; e < num_edges; ++e) {
          GRAFT_ASSIGN_OR_RETURN(int64_t target, r.ReadSignedVarint());
          GRAFT_ASSIGN_OR_RETURN(EdgeValue ev, EdgeValue::Read(r));
          edges.push_back({target, std::move(ev)});
        }
        GRAFT_ASSIGN_OR_RETURN(uint64_t num_msgs, r.ReadVarint());
        std::vector<Message> inbox;
        inbox.reserve(num_msgs);
        for (uint64_t m = 0; m < num_msgs; ++m) {
          GRAFT_ASSIGN_OR_RETURN(Message msg, Message::Read(r));
          inbox.push_back(std::move(msg));
        }
        if (PartitionOf(id) != static_cast<size_t>(part)) {
          return Status::InvalidArgument(StrFormat(
              "vertex %lld checkpointed in partition %d but hashes to %zu — "
              "engine options do not match the checkpointing engine's",
              static_cast<long long>(id), part, PartitionOf(id)));
        }
        VertexT v(id, std::move(value), std::move(edges));
        if (halted) v.VoteToHalt();
        AddVertexInternal(std::move(v));
        msg_store_.RestoreInbox(
            static_cast<size_t>(part),
            partitions_[static_cast<size_t>(part)].vertices.size() - 1,
            std::move(inbox));
      }
      if (!r.AtEnd()) {
        return Status::Internal(StrFormat(
            "trailing bytes in checkpoint part %d", part));
      }
      const Partition& p = partitions_[static_cast<size_t>(part)];
      const CheckpointMeta::PartitionCounters& c =
          meta.partitions[static_cast<size_t>(part)];
      if (p.alive_count != c.alive || p.edge_count != c.edges ||
          p.awake_count != c.awake) {
        return Status::Internal(StrFormat(
            "checkpoint counter drift in partition %d: alive %llu/%llu "
            "edges %llu/%llu awake %llu/%llu (restored/meta)",
            part, static_cast<unsigned long long>(p.alive_count),
            static_cast<unsigned long long>(c.alive),
            static_cast<unsigned long long>(p.edge_count),
            static_cast<unsigned long long>(c.edges),
            static_cast<unsigned long long>(p.awake_count),
            static_cast<unsigned long long>(c.awake)));
      }
    }
    restored_aggregators_ = std::move(meta.aggregators);
    restored_per_superstep_ = std::move(meta.per_superstep);
    restored_total_messages_ = meta.total_messages;
    restored_total_messages_dropped_ = meta.total_messages_dropped;
    restored_pending_ = meta.pending_messages;
    restored_dropped_ = meta.messages_dropped_at_resume;
    resume_superstep_ = superstep;
    recovered_ = true;
    UpdateTotalsFromPartitions();
    restore_seconds_ = clock.ElapsedSeconds();
    gauge_restore_seconds_->Set(restore_seconds_);
    return Status::OK();
  }

  // Checkpoint accounting, readable even after Run() returned an error (a
  // failed Result carries no JobStats — JobRunner folds these into the
  // final attempt's recovery profile).
  uint64_t checkpoints_written() const { return ckpt_written_; }
  uint64_t checkpoint_bytes() const { return ckpt_bytes_; }
  double checkpoint_seconds() const { return ckpt_seconds_; }
  double restore_seconds() const { return restore_seconds_; }
  bool recovered() const { return recovered_; }
  int64_t resume_superstep() const { return resume_superstep_; }

  /// The registry this engine records into (Options::metrics when supplied,
  /// otherwise the engine's private registry).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Stable partition (worker) assignment of a vertex id.
  size_t PartitionOf(VertexId id) const {
    return PartitionOfHash(Mix64(static_cast<uint64_t>(id)));
  }

  /// Partition assignment from an already-mixed hash: multiply-shift range
  /// reduction (hash * P / 2^64) instead of `hash % P` — no integer divide
  /// on the per-message routing path.
  size_t PartitionOfHash(uint64_t hash) const {
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(hash) *
         static_cast<uint64_t>(options_.num_workers)) >>
        64);
  }

  /// Recounts alive vertices, live edges, and awake (non-halted) vertices
  /// with a full scan and compares against the incremental per-partition
  /// counters. Test/debug hook — the hot path never calls this; it is how
  /// the topology-mutation consistency tests prove the incremental
  /// bookkeeping right. Safe to call between supersteps (e.g. from a
  /// SuperstepObserver) or after Run().
  Status ValidateCountersByFullScan() const {
    for (size_t pi = 0; pi < partitions_.size(); ++pi) {
      const Partition& p = partitions_[pi];
      uint64_t alive = 0;
      uint64_t edges = 0;
      uint64_t awake = 0;
      for (const VertexT& v : p.vertices) {
        if (!v.alive()) continue;
        ++alive;
        edges += v.num_edges();
        if (!v.halted()) ++awake;
      }
      if (alive != p.alive_count || edges != p.edge_count ||
          awake != p.awake_count) {
        return Status::Internal(StrFormat(
            "partition %zu counter drift: alive %llu/%llu edges %llu/%llu "
            "awake %llu/%llu (counted/scanned)",
            pi, static_cast<unsigned long long>(p.alive_count),
            static_cast<unsigned long long>(alive),
            static_cast<unsigned long long>(p.edge_count),
            static_cast<unsigned long long>(edges),
            static_cast<unsigned long long>(p.awake_count),
            static_cast<unsigned long long>(awake)));
      }
    }
    return Status::OK();
  }

 private:
  struct Partition {
    std::vector<VertexT> vertices;
    FlatIndex index;  // id -> slot in `vertices`; slots are never unmapped
    // Incremental bookkeeping, owned by the partition's worker during
    // parallel phases and by the engine thread between them: counts over
    // alive vertices only. `awake_count` is the number of alive vertices
    // with halted()==false — the vote-to-halt half of the termination
    // check.
    uint64_t alive_count = 0;
    uint64_t edge_count = 0;
    uint64_t awake_count = 0;
  };

  struct MutationBuffer {
    std::vector<VertexId> remove_vertices;
    std::vector<std::tuple<VertexId, VertexId, EdgeValue>> add_edges;
    std::vector<std::pair<VertexId, VertexId>> remove_edges;

    bool Empty() const {
      return remove_vertices.empty() && add_edges.empty() &&
             remove_edges.empty();
    }
    void Clear() {
      remove_vertices.clear();
      add_edges.clear();
      remove_edges.clear();
    }
  };

  /// One staged (not-yet-routed) message. Sends are buffered per worker in
  /// batches of kSendBatch and routed together: the batch loop computes all
  /// the partition hashes first and prefetches the index cells and combining
  /// slots, so the per-message cache misses overlap instead of serializing.
  struct StagedSend {
    VertexId target;
    Message message;
  };
  static constexpr size_t kSendBatch = 64;

  /// Engine-side ComputeContext implementation, one per worker thread.
  class WorkerCtx final : public ComputeContext<Traits> {
   public:
    WorkerCtx(Engine* engine, int worker)
        : engine_(engine), worker_(worker), rng_(0) {}

    // -- engine-side hooks --
    void BeginVertex(VertexId id) {
      rng_ = Rng::ForStream(engine_->options_.seed,
                            static_cast<uint64_t>(engine_->superstep_),
                            static_cast<uint64_t>(id));
    }
    MutationBuffer& mutations() { return mutations_; }
    std::map<std::string, AggValue>& partial_aggregations() {
      return partial_;
    }
    uint64_t TakeMessagesSent() {
      uint64_t n = messages_sent_;
      messages_sent_ = 0;
      return n;
    }

    // -- ComputeContext interface --
    int64_t superstep() const override { return engine_->superstep_; }
    int64_t total_num_vertices() const override {
      return static_cast<int64_t>(engine_->total_vertices_);
    }
    int64_t total_num_edges() const override {
      return static_cast<int64_t>(engine_->total_edges_);
    }
    void SendMessage(VertexId target, const Message& message) override {
      staged_.push_back({target, message});
      ++messages_sent_;
      if (staged_.size() == kSendBatch) engine_->FlushSends(worker_, &staged_);
    }
    /// Drains any sends still staged — must run before the compute phase's
    /// barrier so every message reaches the store this superstep.
    void FlushStagedSends() {
      if (!staged_.empty()) engine_->FlushSends(worker_, &staged_);
    }
    AggValue GetAggregated(const std::string& name) const override {
      auto it = engine_->visible_aggregators_.find(name);
      return it == engine_->visible_aggregators_.end() ? AggValue{}
                                                       : it->second;
    }
    void Aggregate(const std::string& name, const AggValue& update) override {
      auto spec = engine_->aggregator_specs_.find(name);
      GRAFT_CHECK(spec != engine_->aggregator_specs_.end())
          << "Aggregate() on unregistered aggregator '" << name << "'";
      auto [it, inserted] = partial_.try_emplace(name, update);
      if (!inserted) {
        it->second = MergeAggValue(spec->second.op, it->second, update);
      }
    }
    const std::map<std::string, AggValue>& VisibleAggregators()
        const override {
      return engine_->visible_aggregators_;
    }
    Rng& rng() override { return rng_; }
    void RemoveVertexRequest(VertexId id) override {
      mutations_.remove_vertices.push_back(id);
    }
    void AddEdgeRequest(VertexId source, VertexId target,
                        const EdgeValue& value) override {
      mutations_.add_edges.emplace_back(source, target, value);
    }
    void RemoveEdgeRequest(VertexId source, VertexId target) override {
      mutations_.remove_edges.emplace_back(source, target);
    }
    int worker_index() const override { return worker_; }

   private:
    Engine* engine_;
    int worker_;
    Rng rng_;
    MutationBuffer mutations_;
    std::map<std::string, AggValue> partial_;
    std::vector<StagedSend> staged_;
    uint64_t messages_sent_ = 0;
  };

  /// Engine-side MasterContext implementation.
  class MasterCtx final : public MasterContext {
   public:
    explicit MasterCtx(Engine* engine) : engine_(engine), rng_(0) {}

    void BeginSuperstep(int64_t superstep) {
      rng_ = Rng::ForStream(engine_->options_.seed,
                            static_cast<uint64_t>(superstep),
                            0xaa57e7ULL /* master stream tag */);
    }

    int64_t superstep() const override { return engine_->superstep_; }
    int64_t total_num_vertices() const override {
      return static_cast<int64_t>(engine_->total_vertices_);
    }
    int64_t total_num_edges() const override {
      return static_cast<int64_t>(engine_->total_edges_);
    }
    Status RegisterAggregator(const std::string& name,
                              const AggregatorSpec& spec) override {
      auto [it, inserted] = engine_->aggregator_specs_.emplace(name, spec);
      (void)it;
      if (!inserted) {
        return Status::AlreadyExists("aggregator '" + name +
                                     "' already registered");
      }
      return Status::OK();
    }
    AggValue GetAggregated(const std::string& name) const override {
      auto it = engine_->visible_aggregators_.find(name);
      return it == engine_->visible_aggregators_.end() ? AggValue{}
                                                       : it->second;
    }
    Status SetAggregated(const std::string& name,
                         const AggValue& value) override {
      if (engine_->aggregator_specs_.count(name) == 0) {
        return Status::NotFound("aggregator '" + name + "' not registered");
      }
      engine_->visible_aggregators_[name] = value;
      return Status::OK();
    }
    const std::map<std::string, AggValue>& VisibleAggregators()
        const override {
      return engine_->visible_aggregators_;
    }
    void HaltComputation() override { engine_->master_halted_ = true; }
    bool IsHalted() const override { return engine_->master_halted_; }
    Rng& rng() override { return rng_; }

   private:
    Engine* engine_;
    Rng rng_;
  };

  /// Routes one batch of staged messages from `sender`'s compute thread into
  /// the message store, in send order. With a combiner each destination slot
  /// is resolved here (one hash lookup — the same lookup delivery used to
  /// pay) so combining happens sender-side; unresolvable targets (unknown
  /// ids) fall back to the entry path and follow the missing-vertex policy
  /// at delivery. There is deliberately no alive() check on resolved slots —
  /// it would cost a second random access per message; a message combined
  /// into a currently-dead slot is handled at delivery (resurrected by the
  /// missing-vertex pre-pass when the policy is on, dropped by the alive()
  /// recheck otherwise).
  ///
  /// The batch is processed in passes — hash + index-cell prefetch, probe +
  /// slot prefetch, write — so the two random memory accesses every message
  /// pays (index cell, combining slot) are in flight for the whole batch at
  /// once instead of one serialized pair per send.
  void FlushSends(int sender, std::vector<StagedSend>* batch) {
    const size_t n = batch->size();
    std::array<uint64_t, kSendBatch> hash;
    std::array<uint32_t, kSendBatch> dest;
    GRAFT_CHECK(n <= kSendBatch);
    for (size_t i = 0; i < n; ++i) {
      hash[i] = FlatIndex::Hash((*batch)[i].target);
      dest[i] = static_cast<uint32_t>(PartitionOfHash(hash[i]));
      partitions_[dest[i]].index.Prefetch(hash[i]);
    }
    if (msg_store_.combining()) {
      std::array<uint32_t, kSendBatch> slot;
      for (size_t i = 0; i < n; ++i) {
        slot[i] = partitions_[dest[i]].index.FindHashed((*batch)[i].target,
                                                        hash[i]);
        if (slot[i] != FlatIndex::kNotFound) {
          msg_store_.PrefetchCombinedSlot(sender, dest[i], slot[i]);
        }
      }
      for (size_t i = 0; i < n; ++i) {
        StagedSend& s = (*batch)[i];
        if (slot[i] != FlatIndex::kNotFound) {
          msg_store_.SendCombined(sender, dest[i], slot[i], s.message);
        } else {
          msg_store_.SendEntry(sender, dest[i], s.target, s.message);
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        StagedSend& s = (*batch)[i];
        msg_store_.SendEntry(sender, dest[i], s.target, s.message);
      }
    }
    batch->clear();
  }

  void AddVertexInternal(VertexT vertex) {
    const size_t part = PartitionOf(vertex.id());
    Partition& p = partitions_[part];
    p.alive_count += 1;
    p.edge_count += vertex.num_edges();
    if (!vertex.halted()) p.awake_count += 1;
    bool inserted = false;
    const uint32_t slot = p.index.InsertOrFind(
        vertex.id(), static_cast<uint32_t>(p.vertices.size()), &inserted);
    if (inserted) {
      p.vertices.push_back(std::move(vertex));
    } else {
      // Resurrect a removed slot; adding a live duplicate is an input error.
      VertexT& dst = p.vertices[slot];
      GRAFT_CHECK(!dst.alive())
          << "duplicate vertex id " << vertex.id() << " in input graph";
      dst = std::move(vertex);
      // The slot's inbox may hold messages delivered before the vertex was
      // removed; a resurrected vertex must not inherit them.
      msg_store_.ClearInbox(part, slot);
    }
    msg_store_.EnsureInboxSlots(part, p.vertices.size());
  }

  void ApplyMutations(std::vector<WorkerCtx>& contexts, SuperstepStats* ss) {
    for (WorkerCtx& ctx : contexts) {
      MutationBuffer& m = ctx.mutations();
      if (m.Empty()) continue;
      for (const auto& [source, target, value] : m.add_edges) {
        VertexT* v = FindMutableVertex(source);
        if ((v == nullptr || !v->alive()) &&
            options_.create_missing_vertices) {
          AddVertexInternal(
              VertexT(source, options_.default_vertex_value, {}));
          v = FindMutableVertex(source);
        }
        if (v != nullptr && v->alive()) {
          v->AddEdge(target, value);
          partitions_[PartitionOf(source)].edge_count += 1;
          ++ss->edges_added;
        }
      }
      for (const auto& [source, target] : m.remove_edges) {
        VertexT* v = FindMutableVertex(source);
        if (v != nullptr && v->alive()) {
          const size_t removed = v->RemoveEdgesTo(target);
          partitions_[PartitionOf(source)].edge_count -= removed;
          ss->edges_removed += removed;
        }
      }
      for (VertexId id : m.remove_vertices) {
        VertexT* v = FindMutableVertex(id);
        if (v != nullptr && v->alive()) {
          Partition& p = partitions_[PartitionOf(id)];
          p.alive_count -= 1;
          p.edge_count -= v->num_edges();
          if (!v->halted()) p.awake_count -= 1;
          v->set_alive(false);
          v->mutable_edges()->clear();
          ++ss->vertices_removed;
        }
      }
      m.Clear();
    }
  }

  VertexT* FindMutableVertex(VertexId id) {
    Partition& p = partitions_[PartitionOf(id)];
    const uint32_t slot = p.index.Find(id);
    if (slot == FlatIndex::kNotFound) return nullptr;
    return &p.vertices[slot];
  }

  /// Drains the message store into this superstep's inboxes on the worker
  /// pool — each worker handles exactly its own partition, including the
  /// missing-vertex creation pass (partition-local by construction, since a
  /// pending target hashes to the partition that will create it; one index
  /// lookup per pending target). Returns the number of messages delivered
  /// into inboxes — the "messages in flight" half of the termination check.
  uint64_t DeliverMessages(SuperstepStats* ss, obs::SuperstepProfile* prof) {
    using Stats = typename MessageStore<Message>::DeliveryStats;
    std::vector<Stats> per_worker(static_cast<size_t>(options_.num_workers));
    pool_.Run([&](int w) {
      Stopwatch clock;
      obs::JournalSpan span(options_.journal, "delivery", "worker", w,
                            superstep_);
      const size_t part = static_cast<size_t>(w);
      if (options_.fault_injector != nullptr &&
          options_.fault_injector->ShouldFail(FaultSite::kDelivery, w)) {
        RequestAbort(Status::Unavailable(StrFormat(
            "injected delivery fault at superstep %lld, partition %d",
            static_cast<long long>(superstep_), w)));
        prof->workers[part].delivery_seconds = clock.ElapsedSeconds();
        return;
      }
      Partition& p = partitions_[part];
      if (options_.create_missing_vertices) {
        msg_store_.ForEachCombinedSlot(part, [&](size_t slot) {
          // A combined slot always names an indexed vertex; it only needs
          // resurrecting when a mutation removed the vertex after the send.
          if (!p.vertices[slot].alive()) {
            AddVertexInternal(VertexT(p.vertices[slot].id(),
                                      options_.default_vertex_value, {}));
          }
        });
        msg_store_.ForEachEntryTarget(part, [&](VertexId target) {
          const uint32_t slot = p.index.Find(target);
          if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
            AddVertexInternal(
                VertexT(target, options_.default_vertex_value, {}));
          }
        });
      }
      per_worker[part] = msg_store_.Deliver(
          part,
          [&](VertexId target) -> size_t {
            const uint32_t slot = p.index.Find(target);
            if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
              return MessageStore<Message>::kNoSlot;
            }
            return slot;
          },
          [&](size_t slot) { return p.vertices[slot].alive(); });
      prof->workers[part].delivery_seconds = clock.ElapsedSeconds();
      span.End(per_worker[part].delivered);
    });
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    for (const Stats& s : per_worker) {
      delivered += s.delivered;
      dropped += s.dropped;
    }
    ss->messages_dropped = dropped;
    return delivered;
  }

  /// O(workers) totals refresh from the incremental partition counters.
  void UpdateTotalsFromPartitions() {
    uint64_t vertices = 0;
    uint64_t edges = 0;
    for (const Partition& p : partitions_) {
      vertices += p.alive_count;
      edges += p.edge_count;
    }
    total_vertices_ = vertices;
    total_edges_ = edges;
  }

  /// True when any vertex will run Compute() this superstep: a message was
  /// delivered into an inbox, or some alive vertex has not voted to halt.
  /// O(workers); replaces the former full-graph scan.
  bool AnyVertexActive(uint64_t delivered_messages) const {
    if (delivered_messages > 0) return true;
    for (const Partition& p : partitions_) {
      if (p.awake_count > 0) return true;
    }
    return false;
  }

  void RunWorker(WorkerCtx* ctx, Computation<Traits>* computation,
                 SuperstepStats* ss, obs::WorkerPhaseProfile* wp) {
    Stopwatch clock;
    obs::JournalSpan span(options_.journal, "compute", "worker",
                          ctx->worker_index(), superstep_);
    const size_t part = static_cast<size_t>(ctx->worker_index());
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->ShouldFail(FaultSite::kWorkerCompute,
                                            ctx->worker_index())) {
      // The simulated worker crash: this worker does no compute at all this
      // superstep, leaving its partition's state mid-superstep-inconsistent
      // — recovery must come from the last checkpoint, not this engine.
      RequestAbort(Status::Unavailable(StrFormat(
          "injected worker crash at superstep %lld, worker %d",
          static_cast<long long>(superstep_), ctx->worker_index())));
      wp->compute_seconds = clock.ElapsedSeconds();
      return;
    }
    Partition& p = partitions_[part];
    uint64_t active = 0;
    int64_t edge_delta = 0;
    int64_t awake_delta = 0;
    for (size_t i = 0; i < p.vertices.size(); ++i) {
      VertexT& v = p.vertices[i];
      if (!v.alive()) continue;
      std::vector<Message>& inbox = msg_store_.Inbox(part, i);
      if (v.halted() && inbox.empty()) continue;
      const bool was_awake = !v.halted();
      v.Activate();
      ++active;
      const int64_t edges_before = static_cast<int64_t>(v.num_edges());
      ctx->BeginVertex(v.id());
      bool failed = false;
      try {
        computation->Compute(*ctx, v, inbox);
      } catch (const WorkerAbortError& e) {
        // Infrastructure failure surfaced inside the compute path (e.g. the
        // Graft instrumenter's trace append failed) — an engine abort, not
        // a user compute error.
        RequestAbort(e.status());
        failed = true;
      } catch (const std::exception& e) {
        RecordComputeError(v.id(), e.what());
        failed = true;
      } catch (...) {
        RecordComputeError(v.id(), "(non-standard exception)");
        failed = true;
      }
      msg_store_.ClearInbox(part, i);
      // Incremental bookkeeping: net local edge mutations and the vote-to-
      // halt transition of this vertex.
      edge_delta += static_cast<int64_t>(v.num_edges()) - edges_before;
      if (was_awake && v.halted()) --awake_delta;
      if (!was_awake && !v.halted()) ++awake_delta;
      if (failed || has_compute_error_.load(std::memory_order_relaxed) ||
          has_abort_.load(std::memory_order_relaxed)) {
        break;  // this or another worker failed
      }
    }
    ctx->FlushStagedSends();
    p.edge_count =
        static_cast<uint64_t>(static_cast<int64_t>(p.edge_count) + edge_delta);
    p.awake_count = static_cast<uint64_t>(
        static_cast<int64_t>(p.awake_count) + awake_delta);
    const uint64_t sent = ctx->TakeMessagesSent();
    wp->compute_seconds = clock.ElapsedSeconds();
    wp->vertices_computed = active;
    wp->messages_sent = sent;
    span.End(active);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ss->active_vertices += active;
    ss->messages_sent += sent;
  }

  /// Publishes a barrier-granularity RunReport snapshot to the telemetry
  /// entry so /jobs/<id>/report advances while the job runs. Nothing when
  /// telemetry is off. The live snapshot carries only the most recent
  /// kLiveProgressTail superstep profiles: copying + serializing the full
  /// growing history at every barrier would make progress publishing
  /// O(supersteps^2) over a long run. The final PublishReport in RunJob
  /// ships the complete history.
  static constexpr size_t kLiveProgressTail = 32;
  void PublishProgress(const JobStats& stats, const Stopwatch& total_clock) {
    if (options_.telemetry == nullptr) return;
    obs::RunReport snapshot;
    snapshot.job_id = stats.report.job_id;
    snapshot.num_workers = stats.report.num_workers;
    snapshot.supersteps = superstep_ + 1;
    snapshot.total_seconds = total_clock.ElapsedSeconds();
    snapshot.capture = stats.report.capture;
    snapshot.analysis = stats.report.analysis;
    snapshot.recovery = stats.report.recovery;
    const std::vector<obs::SuperstepProfile>& profiles =
        stats.report.per_superstep;
    const size_t first = profiles.size() > kLiveProgressTail
                             ? profiles.size() - kLiveProgressTail
                             : 0;
    snapshot.per_superstep.assign(
        profiles.begin() + static_cast<std::ptrdiff_t>(first), profiles.end());
    options_.telemetry->PublishReport(snapshot);
  }

  /// One relaxed-cost pointer test when the sanitizer is off; the stamp is
  /// only ~7 atomic stores per superstep when it is on.
  void StampPhase(EnginePhase phase, int64_t superstep) {
    if (options_.phase_clock != nullptr) {
      options_.phase_clock->Set(phase, superstep);
    }
  }

  Status TakeAbortStatus() {
    StampPhase(EnginePhase::kDone, superstep_);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return abort_status_.value_or(
        Status::Internal("abort requested without a status"));
  }

  /// Serializes the full engine state at the start of superstep `superstep`
  /// into options_.checkpoint.store. Commit protocol: delete leftovers of a
  /// previous partial attempt, write part + meta records, Flush, write the
  /// COMMIT marker, Flush — a crash mid-write leaves no COMMIT and the
  /// checkpoint stays invisible to recovery. Ends with GC of superseded
  /// checkpoints. Per-partition record layout (all varint-coded):
  ///   alive_count, then per alive vertex in slot order:
  ///     id, value, halted, num_edges, (target, edge_value)*,
  ///     inbox_size, message*
  /// Slot order is load-bearing: restoring in this order reproduces the
  /// original FlatIndex insertion order (dead slots compacted away), which
  /// keeps every downstream iteration order — and hence traces — identical.
  Status WriteCheckpoint(int64_t superstep, uint64_t delivered,
                         uint64_t dropped, const JobStats& stats) {
    Stopwatch clock;
    obs::JournalSpan span(options_.journal, "checkpoint.commit", "checkpoint",
                          -1, superstep);
    TraceStore& store = *options_.checkpoint.store;
    const std::string dir = CheckpointDir(options_.job_id, superstep);
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(dir));
    uint64_t bytes = 0;
    for (int part = 0; part < options_.num_workers; ++part) {
      const Partition& p = partitions_[static_cast<size_t>(part)];
      BinaryWriter w;
      w.WriteVarint(p.alive_count);
      for (size_t i = 0; i < p.vertices.size(); ++i) {
        const VertexT& v = p.vertices[i];
        if (!v.alive()) continue;
        w.WriteSignedVarint(v.id());
        v.value().Write(w);
        w.WriteBool(v.halted());
        w.WriteVarint(v.num_edges());
        for (const auto& e : v.edges()) {
          w.WriteSignedVarint(e.target);
          e.value.Write(w);
        }
        const std::vector<Message>& inbox =
            msg_store_.Inbox(static_cast<size_t>(part), i);
        w.WriteVarint(inbox.size());
        for (const Message& m : inbox) m.Write(w);
      }
      bytes += w.size();
      GRAFT_RETURN_NOT_OK(store.Append(
          CheckpointPartFile(options_.job_id, superstep, part), w.buffer()));
    }
    CheckpointMeta meta;
    meta.superstep = superstep;
    meta.num_partitions = options_.num_workers;
    meta.pending_messages = delivered;
    meta.messages_dropped_at_resume = dropped;
    for (const Partition& p : partitions_) {
      meta.partitions.push_back({p.alive_count, p.edge_count, p.awake_count});
    }
    meta.aggregators = visible_aggregators_;
    meta.total_messages = stats.total_messages;
    meta.total_messages_dropped = stats.total_messages_dropped;
    meta.per_superstep = stats.per_superstep;
    const std::string meta_record = meta.Serialize();
    bytes += meta_record.size();
    GRAFT_RETURN_NOT_OK(store.Append(
        CheckpointMetaFile(options_.job_id, superstep), meta_record));
    GRAFT_RETURN_NOT_OK(store.Flush());
    GRAFT_RETURN_NOT_OK(store.Append(
        CheckpointCommitFile(options_.job_id, superstep), "ok"));
    GRAFT_RETURN_NOT_OK(store.Flush());
    GRAFT_RETURN_NOT_OK(GarbageCollectCheckpoints(store, options_.job_id,
                                                  options_.checkpoint.keep));
    ckpt_written_ += 1;
    ckpt_bytes_ += bytes;
    ckpt_seconds_ += clock.ElapsedSeconds();
    ctr_checkpoints_->Increment();
    ctr_checkpoint_bytes_->Increment(bytes);
    gauge_checkpoint_seconds_->Set(ckpt_seconds_);
    span.End(bytes);
    return Status::OK();
  }

  void RecordComputeError(VertexId id, const std::string& what) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (!compute_error_.has_value()) {
      compute_error_ = StrFormat(
          "exception escaped Compute() at superstep %lld, vertex %lld: %s",
          static_cast<long long>(superstep_), static_cast<long long>(id),
          what.c_str());
    }
    has_compute_error_.store(true, std::memory_order_relaxed);
  }

  void MergeAggregators(std::vector<WorkerCtx>& contexts) {
    // Start from initial (regular) or carried-forward (persistent) values.
    std::map<std::string, AggValue> merged;
    for (const auto& [name, spec] : aggregator_specs_) {
      if (spec.persistent) {
        auto it = visible_aggregators_.find(name);
        merged[name] =
            it == visible_aggregators_.end() ? spec.initial : it->second;
      } else {
        merged[name] = spec.initial;
      }
    }
    for (WorkerCtx& ctx : contexts) {
      for (auto& [name, update] : ctx.partial_aggregations()) {
        auto spec = aggregator_specs_.find(name);
        merged[name] = MergeAggValue(spec->second.op, merged[name], update);
      }
      ctx.partial_aggregations().clear();
    }
    visible_aggregators_ = std::move(merged);
  }

  void ResetVisibleAggregators(
      const std::map<std::string, AggValue>& previous_merged) {
    visible_aggregators_.clear();
    for (const auto& [name, spec] : aggregator_specs_) {
      auto it = previous_merged.find(name);
      visible_aggregators_[name] =
          it == previous_merged.end() ? spec.initial : it->second;
    }
  }

  /// Completes the bookkeeping of a superstep that terminated the job
  /// before its vertex phase (master halt / all halted): the run report
  /// keeps the partial superstep's mutation/delivery/master timings instead
  /// of silently dropping them. Metrics histograms and counters only cover
  /// completed supersteps, so they are not recorded here.
  void RecordPartialSuperstep(JobStats* stats, SuperstepStats* ss,
                              obs::SuperstepProfile* prof,
                              const Stopwatch& superstep_clock) {
    ss->seconds = superstep_clock.ElapsedSeconds();
    prof->total_seconds = ss->seconds;
    prof->partial = true;
    for (obs::WorkerPhaseProfile& wp : prof->workers) {
      wp.barrier_wait_seconds =
          std::max(0.0, prof->delivery_wall_seconds - wp.delivery_seconds);
    }
    stats->per_superstep.push_back(*ss);
    stats->report.per_superstep.push_back(std::move(*prof));
  }

  void FinalizeStats(JobStats* stats, const Stopwatch& clock) {
    StampPhase(EnginePhase::kDone, superstep_);
    UpdateTotalsFromPartitions();
    stats->supersteps = superstep_;
    stats->final_vertices = total_vertices_;
    stats->final_edges = total_edges_;
    stats->total_seconds = clock.ElapsedSeconds();
    stats->report.supersteps = superstep_;
    stats->report.total_seconds = stats->total_seconds;
    stats->report.recovery.checkpoints_enabled =
        options_.checkpoint.enabled();
    stats->report.recovery.checkpoints_written = ckpt_written_;
    stats->report.recovery.checkpoint_bytes = ckpt_bytes_;
    stats->report.recovery.checkpoint_seconds = ckpt_seconds_;
    stats->report.recovery.restore_seconds = restore_seconds_;
    // Pool-reuse evidence for the run report consumers: a fixed thread
    // count across a growing number of parallel phases means no per-phase
    // spawn happened.
    gauge_pool_threads_->Set(static_cast<double>(options_.num_workers - 1));
    gauge_pool_phases_->Set(static_cast<double>(pool_.generations()));
    if (options_.telemetry != nullptr) {
      options_.telemetry->PublishReport(stats->report);
    }
  }

  /// Records the completed superstep's phase timings into the metrics
  /// registry (the per-worker shards were written lock-free during the
  /// parallel phases; histograms merge shards on export).
  void RecordSuperstepMetrics(const obs::SuperstepProfile& prof,
                              const SuperstepStats& ss) {
    hist_mutation_->Record(prof.mutation_seconds);
    hist_master_->Record(prof.master_seconds);
    hist_agg_merge_->Record(prof.aggregator_merge_seconds);
    hist_superstep_->Record(prof.total_seconds);
    for (const obs::WorkerPhaseProfile& wp : prof.workers) {
      hist_compute_->Record(wp.compute_seconds, wp.worker);
      hist_delivery_->Record(wp.delivery_seconds, wp.worker);
      hist_barrier_wait_->Record(wp.barrier_wait_seconds, wp.worker);
    }
    ctr_supersteps_->Increment();
    ctr_messages_->Increment(ss.messages_sent);
    ctr_dropped_->Increment(ss.messages_dropped);
    ctr_vertices_computed_->Increment(ss.active_vertices);
  }

  Options options_;
  ComputationFactory<Traits> computation_factory_;
  std::unique_ptr<MasterCompute> master_;
  WorkerPool pool_;
  MessageStore<Message> msg_store_;
  std::vector<Partition> partitions_;
  std::vector<SuperstepObserver*> observers_;

  std::unordered_map<std::string, AggregatorSpec> aggregator_specs_;
  std::map<std::string, AggValue> visible_aggregators_;

  int64_t superstep_ = 0;
  uint64_t total_vertices_ = 0;
  uint64_t total_edges_ = 0;
  bool master_halted_ = false;

  std::mutex stats_mutex_;
  std::optional<std::string> compute_error_;
  std::atomic<bool> has_compute_error_{false};
  std::optional<Status> abort_status_;  // guarded by stats_mutex_
  std::atomic<bool> has_abort_{false};

  // Checkpoint/recovery state. `restored_*` carry checkpointed state from
  // RestoreFromCheckpoint into Run(); the rest is accounting surfaced via
  // the run report and the post-run accessors.
  int64_t resume_superstep_ = 0;
  bool recovered_ = false;
  uint64_t restored_pending_ = 0;
  uint64_t restored_dropped_ = 0;
  std::map<std::string, AggValue> restored_aggregators_;
  std::vector<SuperstepStats> restored_per_superstep_;
  uint64_t restored_total_messages_ = 0;
  uint64_t restored_total_messages_dropped_ = 0;
  uint64_t ckpt_written_ = 0;
  uint64_t ckpt_bytes_ = 0;
  double ckpt_seconds_ = 0.0;
  double restore_seconds_ = 0.0;

  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* hist_compute_ = nullptr;
  obs::Histogram* hist_delivery_ = nullptr;
  obs::Histogram* hist_barrier_wait_ = nullptr;
  obs::Histogram* hist_mutation_ = nullptr;
  obs::Histogram* hist_master_ = nullptr;
  obs::Histogram* hist_agg_merge_ = nullptr;
  obs::Histogram* hist_superstep_ = nullptr;
  obs::Counter* ctr_supersteps_ = nullptr;
  obs::Counter* ctr_messages_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_vertices_computed_ = nullptr;
  obs::Gauge* gauge_pool_threads_ = nullptr;
  obs::Gauge* gauge_pool_phases_ = nullptr;
  obs::Counter* ctr_checkpoints_ = nullptr;
  obs::Counter* ctr_checkpoint_bytes_ = nullptr;
  obs::Gauge* gauge_checkpoint_seconds_ = nullptr;
  obs::Gauge* gauge_restore_seconds_ = nullptr;
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_ENGINE_H_
