#ifndef GRAFT_PREGEL_ENGINE_H_
#define GRAFT_PREGEL_ENGINE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/flat_index.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "io/trace_sink.h"
#include "obs/event_journal.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pregel/checkpoint.h"
#include "pregel/computation.h"
#include "pregel/compute_context.h"
#include "pregel/job_stats.h"
#include "pregel/master.h"
#include "pregel/message_store.h"
#include "pregel/phase.h"
#include "pregel/vertex.h"

namespace graft {
namespace pregel {

/// Multi-threaded BSP engine implementing the Pregel/Giraph execution
/// contract (DESIGN.md §4): hash-partitioned vertices across worker threads,
/// supersteps separated by barriers, messages sent in superstep S delivered
/// in S+1 (optionally combined), aggregators merged at superstep boundaries,
/// an optional master.compute() at the beginning of every superstep, vote-to-
/// halt termination, and Pregel-style topology mutation between supersteps.
///
/// This is the paper's "Apache Giraph" substrate: worker tasks on cluster
/// machines become worker threads, with identical superstep semantics
/// (DESIGN.md substitutions table).
///
/// Hot-path architecture (the Figure 7 denominator — DESIGN.md §4):
///  * a persistent WorkerPool executes both parallel phases of every
///    superstep on the same parked threads (no per-phase thread spawn/join);
///  * messages move through a double-buffered, chunk-backed MessageStore
///    with sender-side combining when Options::combiner is set;
///  * graph totals and the vote-to-halt termination check are maintained
///    incrementally per partition (alive/edge/awake counters updated during
///    compute and mutation), so no per-superstep O(V) scan remains.
template <JobTraits Traits>
class Engine {
 public:
  using VertexT = Vertex<Traits>;
  using VertexValue = typename Traits::VertexValue;
  using EdgeValue = typename Traits::EdgeValue;
  using Message = typename Traits::Message;
  using Combiner = std::function<Message(const Message&, const Message&)>;

  struct Options {
    /// Worker threads (Giraph worker tasks).
    int num_workers = 2;
    /// Safety cap; the MWM scenario (§4.3) relies on jobs that do NOT
    /// converge, so the cap is what ends them.
    int64_t max_supersteps = 1'000'000;
    /// Job seed: all randomness (vertex RNG streams, master RNG) derives
    /// from it, making whole runs reproducible.
    uint64_t seed = 0x6a0b5eedULL;
    /// Pregel semantics for messages sent to nonexistent vertex ids: create
    /// the vertex with `default_vertex_value` (Giraph's default resolver) or
    /// silently drop and count (what MWM wants after removing vertices).
    bool create_missing_vertices = false;
    VertexValue default_vertex_value{};
    /// Optional message combiner (associative + commutative). When set, the
    /// engine combines on the sender side: each worker folds its sends into
    /// one slot per destination vertex, and delivery merges at most
    /// num_workers partials per vertex.
    Combiner combiner;
    std::string job_id = "job";
    /// Optional shared metrics registry. When set, the engine records its
    /// phase-latency histograms and counters there (so one registry can
    /// collect engine + trace-store + capture metrics for a whole debugged
    /// run); when null the engine uses a private registry. Either way the
    /// JobStats::report carries the structured per-superstep profile.
    obs::MetricsRegistry* metrics = nullptr;
    /// Superstep checkpointing (DESIGN.md "Fault tolerance & recovery");
    /// disabled unless interval > 0 and a store is set. Application code
    /// should configure this through JobSpec, which defaults the store.
    CheckpointOptions checkpoint;
    /// Computation factory for confined recovery's replay loop (delta mode).
    /// JobRunner points this at the raw user computation: replaying through
    /// the capture-instrumented wrapper would re-record traces the store
    /// already holds. Null falls back to the engine's main factory.
    ComputationFactory<Traits> replay_computation;
    /// Optional deterministic fault injector consulted at the start of each
    /// worker's compute and delivery slice. Injected faults abort the run
    /// with Status::Unavailable — the retryable class JobRunner recovers
    /// from. Store-level faults are injected via FaultInjectingTraceStore.
    FaultInjector* fault_injector = nullptr;
    /// Optional phase clock the engine stamps at every barrier-cycle
    /// transition (setup, mutation, delivery, master, compute, merge). The
    /// BspSanitizer's checked contexts read it to validate aggregator access
    /// timing. Null (the default) skips all stamping — the release path
    /// pays one pointer test per phase, nothing per vertex or message.
    PhaseClock* phase_clock = nullptr;
    /// Optional structured event journal (DESIGN.md §11). When set, the
    /// engine emits span events per phase and per worker slice — O(workers)
    /// events per superstep, nothing per vertex or message. Null (the
    /// default) costs one pointer test per phase.
    obs::EventJournal* journal = nullptr;
    /// Optional live-progress sink: when set, the engine publishes a
    /// RunReport snapshot at every superstep barrier so the telemetry
    /// server's /jobs/<id>/report advances while the job runs. Application
    /// code configures this through JobSpec::telemetry.
    obs::JobEntry* telemetry = nullptr;
  };

  /// Observes superstep boundaries; Graft's capture manager subscribes to
  /// record master contexts and per-superstep metadata without the engine
  /// knowing anything about the debugger.
  class SuperstepObserver {
   public:
    virtual ~SuperstepObserver() = default;
    /// After mutation application + message delivery, before master runs.
    /// `aggs` are the values the master (and then vertices) will see.
    virtual void OnSuperstepStart(int64_t superstep,
                                  const std::map<std::string, AggValue>& aggs) {
      (void)superstep;
      (void)aggs;
    }
    /// After master.compute() for `superstep` returned.
    virtual void OnMasterComputed(int64_t superstep,
                                  const std::map<std::string, AggValue>& aggs,
                                  bool master_halted) {
      (void)superstep;
      (void)aggs;
      (void)master_halted;
    }
    virtual void OnSuperstepEnd(int64_t superstep,
                                const SuperstepStats& stats) {
      (void)superstep;
      (void)stats;
    }
    /// After a checkpoint for `superstep` was committed. The capture layer
    /// snapshots its counters here so a recovery can rewind them to the
    /// checkpoint's state.
    virtual void OnCheckpoint(int64_t superstep) { (void)superstep; }
  };

  Engine(Options options, std::vector<VertexT> initial_vertices,
         ComputationFactory<Traits> computation_factory,
         MasterFactory master_factory = nullptr)
      : options_(std::move(options)),
        computation_factory_(std::move(computation_factory)),
        pool_(options_.num_workers) {
    GRAFT_CHECK(options_.num_workers >= 1);
    GRAFT_CHECK(computation_factory_ != nullptr);
    if (master_factory) master_ = master_factory();
    partitions_.resize(static_cast<size_t>(options_.num_workers));
    part_base_superstep_.assign(partitions_.size(), 0);
    msg_store_.Configure(options_.num_workers, options_.combiner);
    if (options_.checkpoint.enabled()) {
      TraceSinkOptions sink_options;
      sink_options.async = options_.checkpoint.async_parts;
      sink_options.journal = options_.journal;
      ckpt_sink_ = MakeTraceSink(options_.checkpoint.store, sink_options);
    }
    for (VertexT& v : initial_vertices) {
      AddVertexInternal(std::move(v));
    }
    metrics_ = options_.metrics != nullptr ? options_.metrics : &own_metrics_;
    const std::vector<double> bounds = obs::DefaultLatencyBounds();
    hist_compute_ = metrics_->GetHistogram("engine.compute_seconds", bounds,
                                           options_.num_workers);
    hist_delivery_ = metrics_->GetHistogram("engine.delivery_seconds", bounds,
                                            options_.num_workers);
    hist_barrier_wait_ = metrics_->GetHistogram("engine.barrier_wait_seconds",
                                                bounds, options_.num_workers);
    hist_mutation_ = metrics_->GetHistogram("engine.mutation_seconds", bounds);
    hist_master_ = metrics_->GetHistogram("engine.master_seconds", bounds);
    hist_agg_merge_ =
        metrics_->GetHistogram("engine.aggregator_merge_seconds", bounds);
    hist_superstep_ =
        metrics_->GetHistogram("engine.superstep_seconds", bounds);
    ctr_supersteps_ = metrics_->GetCounter("engine.supersteps_total");
    ctr_messages_ = metrics_->GetCounter("engine.messages_sent_total");
    ctr_dropped_ = metrics_->GetCounter("engine.messages_dropped_total");
    ctr_vertices_computed_ =
        metrics_->GetCounter("engine.vertices_computed_total");
    gauge_pool_threads_ = metrics_->GetGauge("engine.pool.threads");
    gauge_pool_phases_ = metrics_->GetGauge("engine.pool.parallel_phases");
    ctr_checkpoints_ = metrics_->GetCounter("engine.checkpoints_total");
    ctr_checkpoint_bytes_ =
        metrics_->GetCounter("engine.checkpoint_bytes_total");
    gauge_checkpoint_seconds_ =
        metrics_->GetGauge("engine.checkpoint_seconds");
    gauge_restore_seconds_ = metrics_->GetGauge("engine.restore_seconds");
    ctr_topology_bytes_ = metrics_->GetCounter("engine.topology_bytes_total");
    ctr_log_bytes_ = metrics_->GetCounter("engine.outbox_log_bytes_total");
    ctr_confined_recoveries_ =
        metrics_->GetCounter("engine.confined_recoveries_total");
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the job to termination. Returns per-superstep statistics, or
  /// Status::Aborted when an exception escaped Compute() (the vertex and
  /// superstep are named in the message; any Graft traces written up to the
  /// failure remain readable — that is the point of the debugger).
  Result<JobStats> Run() {
    Stopwatch total_clock;
    JobStats stats;
    stats.report.job_id = options_.job_id;
    stats.report.num_workers = options_.num_workers;
    // A recovered run reports whole-job statistics: seed them with the
    // prefix restored from the checkpoint (empty on a fresh run).
    stats.per_superstep = restored_per_superstep_;
    stats.total_messages = restored_total_messages_;
    stats.total_messages_dropped = restored_total_messages_dropped_;
    StampPhase(EnginePhase::kSetup, -1);
    MasterCtx master_ctx(this);
    if (master_ != nullptr) {
      master_->Initialize(master_ctx);
      // Regular aggregators start at their initial value for superstep 0.
      ResetVisibleAggregators(/*previous_merged=*/{});
    }
    if (recovered_) {
      // The aggregator values the checkpointed superstep saw (persistent
      // aggregators and master SetAggregated state included); specs were
      // just re-registered by Initialize above.
      visible_aggregators_ = restored_aggregators_;
    } else if (options_.checkpoint.enabled()) {
      // Checkpoint 0: the loaded input graph, so any later failure —
      // including one before the first interval boundary — has a recovery
      // point. Committed eagerly even in async mode: a superstep-0 fault
      // must already find it on the store.
      GRAFT_RETURN_NOT_OK(WriteCheckpoint(0, 0, 0, stats));
      GRAFT_RETURN_NOT_OK(FinishPendingCheckpoint());
      for (auto* obs : observers_) obs->OnCheckpoint(0);
    }

    std::vector<WorkerCtx> contexts;
    std::vector<std::unique_ptr<Computation<Traits>>> computations;
    contexts.reserve(static_cast<size_t>(options_.num_workers));
    for (int w = 0; w < options_.num_workers; ++w) {
      contexts.emplace_back(this, w);
      computations.push_back(computation_factory_());
      GRAFT_CHECK(computations.back() != nullptr);
    }

    for (superstep_ = resume_superstep_; superstep_ < options_.max_supersteps;
         ++superstep_) {
      if (options_.fault_injector != nullptr) {
        options_.fault_injector->set_current_superstep(superstep_);
      }
      Stopwatch superstep_clock;
      SuperstepStats ss;
      ss.superstep = superstep_;
      obs::SuperstepProfile prof;
      prof.superstep = superstep_;
      prof.workers.resize(static_cast<size_t>(options_.num_workers));
      for (int w = 0; w < options_.num_workers; ++w) {
        prof.workers[static_cast<size_t>(w)].worker = w;
      }
      // RAII: published on every exit from this iteration, including the
      // early termination returns below.
      obs::JournalSpan superstep_span(options_.journal, "superstep", "engine",
                                      -1, superstep_);

      // 1. Apply topology mutations requested in the previous superstep.
      {
        StampPhase(EnginePhase::kMutation, superstep_);
        obs::JournalSpan span(options_.journal, "mutation", "engine", -1,
                              superstep_);
        Stopwatch clock;
        ApplyMutations(contexts, &ss);
        prof.mutation_seconds = clock.ElapsedSeconds();
      }

      // 2. Deliver messages sent in the previous superstep (after mutations,
      //    so a message for a just-removed vertex follows the missing-vertex
      //    policy, per Pregel).
      uint64_t delivered = 0;
      {
        StampPhase(EnginePhase::kDelivery, superstep_);
        obs::JournalSpan span(options_.journal, "delivery", "engine", -1,
                              superstep_);
        Stopwatch clock;
        delivered = DeliverMessages(&ss, &prof);
        prof.delivery_wall_seconds = clock.ElapsedSeconds();
        span.End(delivered);
      }
      // On the resumed superstep the delivery above drained nothing (the
      // outboxes died with the failed run) — the checkpointed inbox contents
      // and their delivery accounting stand in for it.
      delivered += std::exchange(restored_pending_, uint64_t{0});
      ss.messages_dropped += std::exchange(restored_dropped_, uint64_t{0});
      if (has_abort_.load(std::memory_order_relaxed)) {
        return TakeAbortStatus();
      }

      // 3. Refresh global data visible to this superstep — an O(workers)
      //    sum of the incrementally-maintained partition counters (the
      //    former full-graph scan is gone).
      UpdateTotalsFromPartitions();

      // Checkpoint boundary: state at the start of superstep S (mutations
      // applied, inboxes filled, master not yet run) — exactly what
      // RestoreFromCheckpoint rebuilds. Skipped at the resume superstep
      // itself: that checkpoint is already committed.
      if (options_.checkpoint.enabled() && superstep_ > 0 &&
          superstep_ % options_.checkpoint.interval == 0 &&
          superstep_ != resume_superstep_) {
        GRAFT_RETURN_NOT_OK(
            WriteCheckpoint(superstep_, delivered, ss.messages_dropped,
                            stats));
        for (auto* obs : observers_) obs->OnCheckpoint(superstep_);
      }

      for (auto* obs : observers_) {
        obs->OnSuperstepStart(superstep_, visible_aggregators_);
      }

      // 4. Master phase: sees aggregators merged at the end of superstep-1.
      StampPhase(EnginePhase::kMasterCompute, superstep_);
      if (master_ != nullptr) {
        obs::JournalSpan span(options_.journal, "master", "engine", -1,
                              superstep_);
        Stopwatch clock;
        master_ctx.BeginSuperstep(superstep_);
        master_->Compute(master_ctx);
        prof.master_seconds = clock.ElapsedSeconds();
      }
      for (auto* obs : observers_) {
        obs->OnMasterComputed(superstep_, visible_aggregators_,
                              master_halted_);
      }
      // An observer (e.g. the master-trace capture path) may have hit an
      // infrastructure failure.
      if (has_abort_.load(std::memory_order_relaxed)) {
        return TakeAbortStatus();
      }
      if (master_halted_) {
        stats.termination = TerminationReason::kMasterHalted;
        stats.total_messages_dropped += ss.messages_dropped;
        RecordPartialSuperstep(&stats, &ss, &prof, superstep_clock);
        FinalizeStats(&stats, total_clock);
        return stats;
      }

      // 5. Termination check: nothing to do this superstep? Incremental —
      //    awake (non-halted) vertices are counted as compute and mutation
      //    toggle them, and delivery already knows whether any message
      //    landed in an inbox.
      if (!AnyVertexActive(delivered)) {
        stats.termination = TerminationReason::kAllHalted;
        stats.total_messages_dropped += ss.messages_dropped;
        RecordPartialSuperstep(&stats, &ss, &prof, superstep_clock);
        FinalizeStats(&stats, total_clock);
        return stats;
      }

      // 6. Vertex phase across all workers, on the persistent pool.
      has_compute_error_.store(false, std::memory_order_relaxed);
      compute_error_.reset();
      // Delta mode journals the aggregator values this superstep's compute
      // will see — confined recovery's replay loop feeds them back to
      // Compute() without re-running the master.
      if (options_.checkpoint.enabled() && options_.checkpoint.delta()) {
        Status logged = AppendAggLog();
        if (!logged.ok()) {
          RequestAbort(std::move(logged));
          return TakeAbortStatus();
        }
      }
      // Confined recovery: in delta mode the injected worker-crash sweep
      // runs on the engine thread *before* the pool launches, so a failed
      // partition can be rebuilt in place (checkpoint + log replay) while
      // the healthy partitions' state is never touched. When the rebuild's
      // preconditions fail the fault degrades to the legacy global abort.
      if (options_.fault_injector != nullptr && UseConfinedRecovery()) {
        for (int w = 0; w < options_.num_workers; ++w) {
          if (!options_.fault_injector->ShouldFail(FaultSite::kWorkerCompute,
                                                   w)) {
            continue;
          }
          Status confined = ConfinedRecover(w);
          if (!confined.ok()) {
            RequestAbort(Status::Unavailable(StrFormat(
                "injected worker crash at superstep %lld, worker %d (%s)",
                static_cast<long long>(superstep_), w,
                confined.message().c_str())));
            return TakeAbortStatus();
          }
        }
      }
      {
        StampPhase(EnginePhase::kVertexCompute, superstep_);
        obs::JournalSpan span(options_.journal, "compute", "engine", -1,
                              superstep_);
        Stopwatch clock;
        pool_.Run([&](int w) {
          RunWorker(&contexts[static_cast<size_t>(w)],
                    computations[static_cast<size_t>(w)].get(), &ss,
                    &prof.workers[static_cast<size_t>(w)]);
        });
        prof.compute_wall_seconds = clock.ElapsedSeconds();
      }
      // A worker's barrier wait is the time it idled for the slowest peer in
      // the two intra-superstep parallel phases.
      for (obs::WorkerPhaseProfile& wp : prof.workers) {
        wp.barrier_wait_seconds =
            std::max(0.0, prof.compute_wall_seconds - wp.compute_seconds) +
            std::max(0.0, prof.delivery_wall_seconds - wp.delivery_seconds);
      }
      // Infrastructure aborts (injected fault, capture I/O failure) outrank
      // compute errors: they carry the retryable status class JobRunner
      // keys its recovery loop on.
      if (has_abort_.load(std::memory_order_relaxed)) {
        return TakeAbortStatus();
      }
      if (compute_error_.has_value()) {
        stats.termination = TerminationReason::kComputeError;
        FinalizeStats(&stats, total_clock);
        ss.seconds = superstep_clock.ElapsedSeconds();
        prof.total_seconds = ss.seconds;
        stats.per_superstep.push_back(ss);
        stats.report.per_superstep.push_back(std::move(prof));
        return Status::Aborted(*compute_error_);
      }

      // 7. Merge per-worker aggregations into the next superstep's view.
      {
        StampPhase(EnginePhase::kAggregatorMerge, superstep_);
        obs::JournalSpan span(options_.journal, "aggregator_merge", "engine",
                              -1, superstep_);
        Stopwatch clock;
        MergeAggregators(contexts);
        prof.aggregator_merge_seconds = clock.ElapsedSeconds();
      }

      // Commit the checkpoint written at this superstep's boundary: its
      // parts rode the async spool while master/compute ran; quiesce and
      // COMMIT now that the superstep's own work is done.
      if (pending_checkpoint_) {
        Status committed = FinishPendingCheckpoint();
        if (!committed.ok()) {
          RequestAbort(std::move(committed));
          return TakeAbortStatus();
        }
      }

      ss.seconds = superstep_clock.ElapsedSeconds();
      prof.total_seconds = ss.seconds;
      stats.total_messages += ss.messages_sent;
      stats.total_messages_dropped += ss.messages_dropped;
      RecordSuperstepMetrics(prof, ss);
      stats.per_superstep.push_back(ss);
      stats.report.per_superstep.push_back(std::move(prof));
      superstep_span.End(ss.messages_sent);
      PublishProgress(stats, total_clock);
      for (auto* obs : observers_) obs->OnSuperstepEnd(superstep_, ss);
    }
    stats.termination = TerminationReason::kMaxSupersteps;
    FinalizeStats(&stats, total_clock);
    return stats;
  }

  // ---- Post-run / observer inspection -----------------------------------

  int64_t superstep() const { return superstep_; }
  uint64_t NumAliveVertices() const { return total_vertices_; }
  uint64_t NumEdges() const { return total_edges_; }
  const Options& options() const { return options_; }

  /// Pointer to a live vertex, or error when absent/removed. Stable only
  /// while the engine is not running a superstep.
  Result<const VertexT*> FindVertex(VertexId id) const {
    const Partition& p = partitions_[PartitionOf(id)];
    const uint32_t slot = p.index.Find(id);
    if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
      return Status::NotFound("vertex " + std::to_string(id) +
                              " not in graph");
    }
    return &p.vertices[slot];
  }

  /// Invokes fn(const VertexT&) on every live vertex.
  template <typename Fn>
  void ForEachVertex(Fn&& fn) const {
    for (const Partition& p : partitions_) {
      for (const VertexT& v : p.vertices) {
        if (v.alive()) fn(v);
      }
    }
  }

  /// Aggregator values as of the last completed superstep.
  const std::map<std::string, AggValue>& VisibleAggregators() const {
    return visible_aggregators_;
  }

  void AddObserver(SuperstepObserver* observer) {
    observers_.push_back(observer);
  }

  /// Records an infrastructure failure (injected fault, capture I/O error)
  /// and asks the run to wind down: Run() returns `status` at the next
  /// abort checkpoint. First abort wins. Thread-safe — callable from worker
  /// threads and observers.
  void RequestAbort(Status status) {
    GRAFT_CHECK(!status.ok());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (!abort_status_.has_value()) abort_status_ = std::move(status);
    }
    has_abort_.store(true, std::memory_order_relaxed);
  }

  /// Rebuilds this engine from the committed checkpoint `superstep` written
  /// by a previous engine of the same job (same num_workers, job_id, seed,
  /// combiner — partition assignment must match or restore fails). The
  /// engine must be freshly constructed with no vertices. On success, Run()
  /// resumes by executing `superstep` against the restored inboxes and
  /// reports whole-job statistics including the restored prefix.
  Status RestoreFromCheckpoint(int64_t superstep) {
    GRAFT_CHECK(options_.checkpoint.enabled())
        << "RestoreFromCheckpoint without checkpoint options";
    for (const Partition& p : partitions_) {
      GRAFT_CHECK(p.vertices.empty())
          << "RestoreFromCheckpoint on a non-empty engine";
    }
    Stopwatch clock;
    obs::JournalSpan span(options_.journal, "checkpoint.restore",
                          "checkpoint", -1, superstep);
    TraceStore& store = *options_.checkpoint.store;
    GRAFT_ASSIGN_OR_RETURN(
        std::vector<std::string> meta_records,
        store.ReadAll(CheckpointMetaFile(options_.job_id, superstep)));
    if (meta_records.size() != 1) {
      return Status::Internal(
          StrFormat("checkpoint meta has %zu records, want 1",
                    meta_records.size()));
    }
    GRAFT_ASSIGN_OR_RETURN(CheckpointMeta meta,
                           CheckpointMeta::Parse(meta_records[0]));
    if (meta.num_partitions != options_.num_workers) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint has %d partitions but engine has %d workers",
          meta.num_partitions, options_.num_workers));
    }
    if (meta.mode == CheckpointMode::kDelta) {
      GRAFT_RETURN_NOT_OK(RestoreDelta(superstep, meta));
    } else {
      for (int part = 0; part < options_.num_workers; ++part) {
        GRAFT_ASSIGN_OR_RETURN(
            std::vector<std::string> records,
            store.ReadAll(
                CheckpointPartFile(options_.job_id, superstep, part)));
        if (records.size() != 1) {
          return Status::Internal(StrFormat(
              "checkpoint part %d has %zu records, want 1", part,
              records.size()));
        }
        BinaryReader r(records[0]);
        GRAFT_ASSIGN_OR_RETURN(uint64_t alive, r.ReadVarint());
        for (uint64_t i = 0; i < alive; ++i) {
          GRAFT_ASSIGN_OR_RETURN(int64_t id, r.ReadSignedVarint());
          GRAFT_ASSIGN_OR_RETURN(VertexValue value, VertexValue::Read(r));
          GRAFT_ASSIGN_OR_RETURN(bool halted, r.ReadBool());
          GRAFT_ASSIGN_OR_RETURN(uint64_t num_edges, r.ReadVarint());
          std::vector<typename VertexT::EdgeT> edges;
          edges.reserve(num_edges);
          for (uint64_t e = 0; e < num_edges; ++e) {
            GRAFT_ASSIGN_OR_RETURN(int64_t target, r.ReadSignedVarint());
            GRAFT_ASSIGN_OR_RETURN(EdgeValue ev, EdgeValue::Read(r));
            edges.push_back({target, std::move(ev)});
          }
          GRAFT_ASSIGN_OR_RETURN(uint64_t num_msgs, r.ReadVarint());
          std::vector<Message> inbox;
          inbox.reserve(num_msgs);
          for (uint64_t m = 0; m < num_msgs; ++m) {
            GRAFT_ASSIGN_OR_RETURN(Message msg, Message::Read(r));
            inbox.push_back(std::move(msg));
          }
          if (PartitionOf(id) != static_cast<size_t>(part)) {
            return Status::InvalidArgument(StrFormat(
                "vertex %lld checkpointed in partition %d but hashes to %zu "
                "— engine options do not match the checkpointing engine's",
                static_cast<long long>(id), part, PartitionOf(id)));
          }
          VertexT v(id, std::move(value), std::move(edges));
          if (halted) v.VoteToHalt();
          AddVertexInternal(std::move(v));
          msg_store_.RestoreInbox(
              static_cast<size_t>(part),
              partitions_[static_cast<size_t>(part)].vertices.size() - 1,
              std::move(inbox));
        }
        if (!r.AtEnd()) {
          return Status::Internal(StrFormat(
              "trailing bytes in checkpoint part %d", part));
        }
        const Partition& p = partitions_[static_cast<size_t>(part)];
        const CheckpointMeta::PartitionCounters& c =
            meta.partitions[static_cast<size_t>(part)];
        if (p.alive_count != c.alive || p.edge_count != c.edges ||
            p.awake_count != c.awake) {
          return Status::Internal(StrFormat(
              "checkpoint counter drift in partition %d: alive %llu/%llu "
              "edges %llu/%llu awake %llu/%llu (restored/meta)",
              part, static_cast<unsigned long long>(p.alive_count),
              static_cast<unsigned long long>(c.alive),
              static_cast<unsigned long long>(p.edge_count),
              static_cast<unsigned long long>(c.edges),
              static_cast<unsigned long long>(p.awake_count),
              static_cast<unsigned long long>(c.awake)));
        }
      }
    }
    restored_aggregators_ = std::move(meta.aggregators);
    restored_per_superstep_ = std::move(meta.per_superstep);
    restored_total_messages_ = meta.total_messages;
    restored_total_messages_dropped_ = meta.total_messages_dropped;
    restored_pending_ = meta.pending_messages;
    restored_dropped_ = meta.messages_dropped_at_resume;
    resume_superstep_ = superstep;
    last_committed_checkpoint_ = superstep;
    recovered_ = true;
    UpdateTotalsFromPartitions();
    restore_seconds_ = clock.ElapsedSeconds();
    gauge_restore_seconds_->Set(restore_seconds_);
    return Status::OK();
  }

  // Checkpoint accounting, readable even after Run() returned an error (a
  // failed Result carries no JobStats — JobRunner folds these into the
  // final attempt's recovery profile).
  uint64_t checkpoints_written() const { return ckpt_written_; }
  uint64_t checkpoint_bytes() const { return ckpt_bytes_; }
  double checkpoint_seconds() const { return ckpt_seconds_; }
  double restore_seconds() const { return restore_seconds_; }
  bool recovered() const { return recovered_; }
  int64_t resume_superstep() const { return resume_superstep_; }
  // Delta-mode accounting (zero in full mode).
  uint64_t topology_bytes() const { return topology_bytes_; }
  uint64_t outbox_log_bytes() const {
    return log_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t confined_recoveries() const { return confined_recoveries_; }
  /// Total vertex Compute() calls executed by confined-recovery replay —
  /// the recompute the rest of the cluster did NOT have to do is everything
  /// outside this count. Tests assert healthy partitions contribute zero.
  uint64_t confined_replayed_vertices() const {
    return confined_replayed_vertices_;
  }
  const std::vector<obs::RecoveryEvent>& confined_recovery_events() const {
    return confined_events_;
  }

  /// The registry this engine records into (Options::metrics when supplied,
  /// otherwise the engine's private registry).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Stable partition (worker) assignment of a vertex id.
  size_t PartitionOf(VertexId id) const {
    return PartitionOfHash(Mix64(static_cast<uint64_t>(id)));
  }

  /// Partition assignment from an already-mixed hash: multiply-shift range
  /// reduction (hash * P / 2^64) instead of `hash % P` — no integer divide
  /// on the per-message routing path.
  size_t PartitionOfHash(uint64_t hash) const {
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(hash) *
         static_cast<uint64_t>(options_.num_workers)) >>
        64);
  }

  /// Recounts alive vertices, live edges, and awake (non-halted) vertices
  /// with a full scan and compares against the incremental per-partition
  /// counters. Test/debug hook — the hot path never calls this; it is how
  /// the topology-mutation consistency tests prove the incremental
  /// bookkeeping right. Safe to call between supersteps (e.g. from a
  /// SuperstepObserver) or after Run().
  Status ValidateCountersByFullScan() const {
    for (size_t pi = 0; pi < partitions_.size(); ++pi) {
      const Partition& p = partitions_[pi];
      uint64_t alive = 0;
      uint64_t edges = 0;
      uint64_t awake = 0;
      for (const VertexT& v : p.vertices) {
        if (!v.alive()) continue;
        ++alive;
        edges += v.num_edges();
        if (!v.halted()) ++awake;
      }
      if (alive != p.alive_count || edges != p.edge_count ||
          awake != p.awake_count) {
        return Status::Internal(StrFormat(
            "partition %zu counter drift: alive %llu/%llu edges %llu/%llu "
            "awake %llu/%llu (counted/scanned)",
            pi, static_cast<unsigned long long>(p.alive_count),
            static_cast<unsigned long long>(alive),
            static_cast<unsigned long long>(p.edge_count),
            static_cast<unsigned long long>(edges),
            static_cast<unsigned long long>(p.awake_count),
            static_cast<unsigned long long>(awake)));
      }
    }
    return Status::OK();
  }

 private:
  struct Partition {
    std::vector<VertexT> vertices;
    FlatIndex index;  // id -> slot in `vertices`; slots are never unmapped
    // Incremental bookkeeping, owned by the partition's worker during
    // parallel phases and by the engine thread between them: counts over
    // alive vertices only. `awake_count` is the number of alive vertices
    // with halted()==false — the vote-to-halt half of the termination
    // check.
    uint64_t alive_count = 0;
    uint64_t edge_count = 0;
    uint64_t awake_count = 0;
    /// Delta checkpointing: true when any vertex state changed since this
    /// partition's last value part was written. Clean partitions ride a
    /// checkpoint header-only — the meta points at their previous part.
    bool dirty = true;
  };

  struct MutationBuffer {
    std::vector<VertexId> remove_vertices;
    std::vector<std::tuple<VertexId, VertexId, EdgeValue>> add_edges;
    std::vector<std::pair<VertexId, VertexId>> remove_edges;

    bool Empty() const {
      return remove_vertices.empty() && add_edges.empty() &&
             remove_edges.empty();
    }
    void Clear() {
      remove_vertices.clear();
      add_edges.clear();
      remove_edges.clear();
    }
  };

  /// One staged (not-yet-routed) message. Sends are buffered per worker in
  /// batches of kSendBatch and routed together: the batch loop computes all
  /// the partition hashes first and prefetches the index cells and combining
  /// slots, so the per-message cache misses overlap instead of serializing.
  struct StagedSend {
    VertexId target;
    Message message;
  };
  static constexpr size_t kSendBatch = 64;

  /// Engine-side ComputeContext implementation, one per worker thread.
  class WorkerCtx final : public ComputeContext<Traits> {
   public:
    WorkerCtx(Engine* engine, int worker)
        : engine_(engine), worker_(worker), rng_(0) {}

    // -- engine-side hooks --
    void BeginVertex(VertexId id) {
      rng_ = Rng::ForStream(engine_->options_.seed,
                            static_cast<uint64_t>(engine_->superstep_),
                            static_cast<uint64_t>(id));
    }
    MutationBuffer& mutations() { return mutations_; }
    std::map<std::string, AggValue>& partial_aggregations() {
      return partial_;
    }
    uint64_t TakeMessagesSent() {
      uint64_t n = messages_sent_;
      messages_sent_ = 0;
      return n;
    }

    // -- ComputeContext interface --
    int64_t superstep() const override { return engine_->superstep_; }
    int64_t total_num_vertices() const override {
      return static_cast<int64_t>(engine_->total_vertices_);
    }
    int64_t total_num_edges() const override {
      return static_cast<int64_t>(engine_->total_edges_);
    }
    void SendMessage(VertexId target, const Message& message) override {
      staged_.push_back({target, message});
      ++messages_sent_;
      if (staged_.size() == kSendBatch) engine_->FlushSends(worker_, &staged_);
    }
    /// Drains any sends still staged — must run before the compute phase's
    /// barrier so every message reaches the store this superstep.
    void FlushStagedSends() {
      if (!staged_.empty()) engine_->FlushSends(worker_, &staged_);
    }
    AggValue GetAggregated(const std::string& name) const override {
      auto it = engine_->visible_aggregators_.find(name);
      return it == engine_->visible_aggregators_.end() ? AggValue{}
                                                       : it->second;
    }
    void Aggregate(const std::string& name, const AggValue& update) override {
      auto spec = engine_->aggregator_specs_.find(name);
      GRAFT_CHECK(spec != engine_->aggregator_specs_.end())
          << "Aggregate() on unregistered aggregator '" << name << "'";
      auto [it, inserted] = partial_.try_emplace(name, update);
      if (!inserted) {
        it->second = MergeAggValue(spec->second.op, it->second, update);
      }
    }
    const std::map<std::string, AggValue>& VisibleAggregators()
        const override {
      return engine_->visible_aggregators_;
    }
    Rng& rng() override { return rng_; }
    void RemoveVertexRequest(VertexId id) override {
      mutations_.remove_vertices.push_back(id);
    }
    void AddEdgeRequest(VertexId source, VertexId target,
                        const EdgeValue& value) override {
      mutations_.add_edges.emplace_back(source, target, value);
    }
    void RemoveEdgeRequest(VertexId source, VertexId target) override {
      mutations_.remove_edges.emplace_back(source, target);
    }
    int worker_index() const override { return worker_; }

   private:
    Engine* engine_;
    int worker_;
    Rng rng_;
    MutationBuffer mutations_;
    std::map<std::string, AggValue> partial_;
    std::vector<StagedSend> staged_;
    uint64_t messages_sent_ = 0;
  };

  /// Engine-side MasterContext implementation.
  class MasterCtx final : public MasterContext {
   public:
    explicit MasterCtx(Engine* engine) : engine_(engine), rng_(0) {}

    void BeginSuperstep(int64_t superstep) {
      rng_ = Rng::ForStream(engine_->options_.seed,
                            static_cast<uint64_t>(superstep),
                            0xaa57e7ULL /* master stream tag */);
    }

    int64_t superstep() const override { return engine_->superstep_; }
    int64_t total_num_vertices() const override {
      return static_cast<int64_t>(engine_->total_vertices_);
    }
    int64_t total_num_edges() const override {
      return static_cast<int64_t>(engine_->total_edges_);
    }
    Status RegisterAggregator(const std::string& name,
                              const AggregatorSpec& spec) override {
      auto [it, inserted] = engine_->aggregator_specs_.emplace(name, spec);
      (void)it;
      if (!inserted) {
        return Status::AlreadyExists("aggregator '" + name +
                                     "' already registered");
      }
      return Status::OK();
    }
    AggValue GetAggregated(const std::string& name) const override {
      auto it = engine_->visible_aggregators_.find(name);
      return it == engine_->visible_aggregators_.end() ? AggValue{}
                                                       : it->second;
    }
    Status SetAggregated(const std::string& name,
                         const AggValue& value) override {
      if (engine_->aggregator_specs_.count(name) == 0) {
        return Status::NotFound("aggregator '" + name + "' not registered");
      }
      engine_->visible_aggregators_[name] = value;
      return Status::OK();
    }
    const std::map<std::string, AggValue>& VisibleAggregators()
        const override {
      return engine_->visible_aggregators_;
    }
    void HaltComputation() override { engine_->master_halted_ = true; }
    bool IsHalted() const override { return engine_->master_halted_; }
    Rng& rng() override { return rng_; }

   private:
    Engine* engine_;
    Rng rng_;
  };

  /// ComputeContext for confined recovery's replay loop: identical
  /// deterministic inputs (replayed superstep, graph totals — static across
  /// the mutation-free window — aggregator values from the agg log, the
  /// per-vertex RNG stream re-derived from seed/superstep/id), every output
  /// discarded. Sends were already captured in the outbox log, aggregator
  /// contributions are folded into later agg-log records, and mutation
  /// requests cannot exist in a window confined recovery accepts.
  class ReplayCtx final : public ComputeContext<Traits> {
   public:
    ReplayCtx(Engine* engine, int worker)
        : engine_(engine), worker_(worker), rng_(0) {}

    /// Positions the context at replay superstep `superstep` and loads the
    /// aggregator values its compute phase originally saw.
    Status BeginSuperstep(int64_t superstep) {
      superstep_ = superstep;
      aggs_.clear();
      TraceStore& store = *engine_->options_.checkpoint.store;
      const std::string file =
          OutboxAggFile(engine_->options_.job_id, superstep);
      if (!store.Exists(file)) return Status::OK();
      GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                             store.ReadAll(file));
      if (records.size() != 1) {
        return Status::Internal(StrFormat(
            "aggregator log for superstep %lld has %zu records, want 1",
            static_cast<long long>(superstep), records.size()));
      }
      BinaryReader r(records[0]);
      GRAFT_ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
      for (uint64_t i = 0; i < count; ++i) {
        GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        GRAFT_ASSIGN_OR_RETURN(AggValue value, AggValue::Read(r));
        aggs_.emplace(std::move(name), std::move(value));
      }
      if (!r.AtEnd()) {
        return Status::Internal(StrFormat(
            "trailing bytes in aggregator log for superstep %lld",
            static_cast<long long>(superstep)));
      }
      return Status::OK();
    }
    void BeginVertex(VertexId id) {
      rng_ = Rng::ForStream(engine_->options_.seed,
                            static_cast<uint64_t>(superstep_),
                            static_cast<uint64_t>(id));
    }

    int64_t superstep() const override { return superstep_; }
    int64_t total_num_vertices() const override {
      return static_cast<int64_t>(engine_->total_vertices_);
    }
    int64_t total_num_edges() const override {
      return static_cast<int64_t>(engine_->total_edges_);
    }
    void SendMessage(VertexId, const Message&) override {}
    AggValue GetAggregated(const std::string& name) const override {
      auto it = aggs_.find(name);
      return it == aggs_.end() ? AggValue{} : it->second;
    }
    void Aggregate(const std::string&, const AggValue&) override {}
    const std::map<std::string, AggValue>& VisibleAggregators()
        const override {
      return aggs_;
    }
    Rng& rng() override { return rng_; }
    void RemoveVertexRequest(VertexId) override {}
    void AddEdgeRequest(VertexId, VertexId, const EdgeValue&) override {}
    void RemoveEdgeRequest(VertexId, VertexId) override {}
    int worker_index() const override { return worker_; }

   private:
    Engine* engine_;
    int worker_;
    int64_t superstep_ = 0;
    std::map<std::string, AggValue> aggs_;
    Rng rng_;
  };

  /// Routes one batch of staged messages from `sender`'s compute thread into
  /// the message store, in send order. With a combiner each destination slot
  /// is resolved here (one hash lookup — the same lookup delivery used to
  /// pay) so combining happens sender-side; unresolvable targets (unknown
  /// ids) fall back to the entry path and follow the missing-vertex policy
  /// at delivery. There is deliberately no alive() check on resolved slots —
  /// it would cost a second random access per message; a message combined
  /// into a currently-dead slot is handled at delivery (resurrected by the
  /// missing-vertex pre-pass when the policy is on, dropped by the alive()
  /// recheck otherwise).
  ///
  /// The batch is processed in passes — hash + index-cell prefetch, probe +
  /// slot prefetch, write — so the two random memory accesses every message
  /// pays (index cell, combining slot) are in flight for the whole batch at
  /// once instead of one serialized pair per send.
  void FlushSends(int sender, std::vector<StagedSend>* batch) {
    const size_t n = batch->size();
    std::array<uint64_t, kSendBatch> hash;
    std::array<uint32_t, kSendBatch> dest;
    GRAFT_CHECK(n <= kSendBatch);
    for (size_t i = 0; i < n; ++i) {
      hash[i] = FlatIndex::Hash((*batch)[i].target);
      dest[i] = static_cast<uint32_t>(PartitionOfHash(hash[i]));
      partitions_[dest[i]].index.Prefetch(hash[i]);
    }
    if (msg_store_.combining()) {
      std::array<uint32_t, kSendBatch> slot;
      for (size_t i = 0; i < n; ++i) {
        slot[i] = partitions_[dest[i]].index.FindHashed((*batch)[i].target,
                                                        hash[i]);
        if (slot[i] != FlatIndex::kNotFound) {
          msg_store_.PrefetchCombinedSlot(sender, dest[i], slot[i]);
        }
      }
      for (size_t i = 0; i < n; ++i) {
        StagedSend& s = (*batch)[i];
        if (slot[i] != FlatIndex::kNotFound) {
          msg_store_.SendCombined(sender, dest[i], slot[i], s.message);
        } else {
          msg_store_.SendEntry(sender, dest[i], s.target, s.message);
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        StagedSend& s = (*batch)[i];
        msg_store_.SendEntry(sender, dest[i], s.target, s.message);
      }
    }
    batch->clear();
  }

  /// Flags the topology as changed at the current superstep. Every effective
  /// mutation path funnels through here; delta checkpoints key their
  /// once-per-epoch topology rewrite on it, and confined recovery refuses a
  /// replay window that contains a change (the window must be slot-stable).
  void MarkTopologyChanged() {
    topology_changed_.store(true, std::memory_order_relaxed);
    last_topology_change_superstep_.store(superstep_,
                                          std::memory_order_relaxed);
  }

  void AddVertexInternal(VertexT vertex) {
    MarkTopologyChanged();
    const size_t part = PartitionOf(vertex.id());
    Partition& p = partitions_[part];
    p.dirty = true;
    p.alive_count += 1;
    p.edge_count += vertex.num_edges();
    if (!vertex.halted()) p.awake_count += 1;
    bool inserted = false;
    const uint32_t slot = p.index.InsertOrFind(
        vertex.id(), static_cast<uint32_t>(p.vertices.size()), &inserted);
    if (inserted) {
      p.vertices.push_back(std::move(vertex));
    } else {
      // Resurrect a removed slot; adding a live duplicate is an input error.
      VertexT& dst = p.vertices[slot];
      GRAFT_CHECK(!dst.alive())
          << "duplicate vertex id " << vertex.id() << " in input graph";
      dst = std::move(vertex);
      // The slot's inbox may hold messages delivered before the vertex was
      // removed; a resurrected vertex must not inherit them.
      msg_store_.ClearInbox(part, slot);
    }
    msg_store_.EnsureInboxSlots(part, p.vertices.size());
  }

  void ApplyMutations(std::vector<WorkerCtx>& contexts, SuperstepStats* ss) {
    for (WorkerCtx& ctx : contexts) {
      MutationBuffer& m = ctx.mutations();
      if (m.Empty()) continue;
      for (const auto& [source, target, value] : m.add_edges) {
        VertexT* v = FindMutableVertex(source);
        if ((v == nullptr || !v->alive()) &&
            options_.create_missing_vertices) {
          AddVertexInternal(
              VertexT(source, options_.default_vertex_value, {}));
          v = FindMutableVertex(source);
        }
        if (v != nullptr && v->alive()) {
          v->AddEdge(target, value);
          partitions_[PartitionOf(source)].edge_count += 1;
          ++ss->edges_added;
          MarkTopologyChanged();
        }
      }
      for (const auto& [source, target] : m.remove_edges) {
        VertexT* v = FindMutableVertex(source);
        if (v != nullptr && v->alive()) {
          const size_t removed = v->RemoveEdgesTo(target);
          partitions_[PartitionOf(source)].edge_count -= removed;
          ss->edges_removed += removed;
          if (removed > 0) MarkTopologyChanged();
        }
      }
      for (VertexId id : m.remove_vertices) {
        VertexT* v = FindMutableVertex(id);
        if (v != nullptr && v->alive()) {
          Partition& p = partitions_[PartitionOf(id)];
          p.alive_count -= 1;
          p.edge_count -= v->num_edges();
          if (!v->halted()) p.awake_count -= 1;
          v->set_alive(false);
          v->mutable_edges()->clear();
          ++ss->vertices_removed;
          p.dirty = true;
          MarkTopologyChanged();
        }
      }
      m.Clear();
    }
  }

  VertexT* FindMutableVertex(VertexId id) {
    Partition& p = partitions_[PartitionOf(id)];
    const uint32_t slot = p.index.Find(id);
    if (slot == FlatIndex::kNotFound) return nullptr;
    return &p.vertices[slot];
  }

  /// Drains the message store into this superstep's inboxes on the worker
  /// pool — each worker handles exactly its own partition, including the
  /// missing-vertex creation pass (partition-local by construction, since a
  /// pending target hashes to the partition that will create it; one index
  /// lookup per pending target). Returns the number of messages delivered
  /// into inboxes — the "messages in flight" half of the termination check.
  uint64_t DeliverMessages(SuperstepStats* ss, obs::SuperstepProfile* prof) {
    using Stats = typename MessageStore<Message>::DeliveryStats;
    std::vector<Stats> per_worker(static_cast<size_t>(options_.num_workers));
    const bool log_outbox =
        options_.checkpoint.enabled() && options_.checkpoint.delta();
    pool_.Run([&](int w) {
      Stopwatch clock;
      obs::JournalSpan span(options_.journal, "delivery", "worker", w,
                            superstep_);
      const size_t part = static_cast<size_t>(w);
      if (options_.fault_injector != nullptr &&
          options_.fault_injector->ShouldFail(FaultSite::kDelivery, w)) {
        RequestAbort(Status::Unavailable(StrFormat(
            "injected delivery fault at superstep %lld, partition %d",
            static_cast<long long>(superstep_), w)));
        prof->workers[part].delivery_seconds = clock.ElapsedSeconds();
        return;
      }
      // Delta mode: journal this partition's incoming outbox units before
      // draining them, so recovery can regenerate the inbox by replay
      // instead of reading a snapshot.
      if (log_outbox) {
        Status logged = AppendOutboxLog(w);
        if (!logged.ok()) {
          RequestAbort(std::move(logged));
          prof->workers[part].delivery_seconds = clock.ElapsedSeconds();
          return;
        }
      }
      Partition& p = partitions_[part];
      if (options_.create_missing_vertices) {
        msg_store_.ForEachCombinedSlot(part, [&](size_t slot) {
          // A combined slot always names an indexed vertex; it only needs
          // resurrecting when a mutation removed the vertex after the send.
          if (!p.vertices[slot].alive()) {
            AddVertexInternal(VertexT(p.vertices[slot].id(),
                                      options_.default_vertex_value, {}));
          }
        });
        msg_store_.ForEachEntryTarget(part, [&](VertexId target) {
          const uint32_t slot = p.index.Find(target);
          if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
            AddVertexInternal(
                VertexT(target, options_.default_vertex_value, {}));
          }
        });
      }
      per_worker[part] = msg_store_.Deliver(
          part,
          [&](VertexId target) -> size_t {
            const uint32_t slot = p.index.Find(target);
            if (slot == FlatIndex::kNotFound || !p.vertices[slot].alive()) {
              return MessageStore<Message>::kNoSlot;
            }
            return slot;
          },
          [&](size_t slot) { return p.vertices[slot].alive(); });
      prof->workers[part].delivery_seconds = clock.ElapsedSeconds();
      span.End(per_worker[part].delivered);
    });
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    for (const Stats& s : per_worker) {
      delivered += s.delivered;
      dropped += s.dropped;
    }
    ss->messages_dropped = dropped;
    return delivered;
  }

  /// O(workers) totals refresh from the incremental partition counters.
  void UpdateTotalsFromPartitions() {
    uint64_t vertices = 0;
    uint64_t edges = 0;
    for (const Partition& p : partitions_) {
      vertices += p.alive_count;
      edges += p.edge_count;
    }
    total_vertices_ = vertices;
    total_edges_ = edges;
  }

  /// True when any vertex will run Compute() this superstep: a message was
  /// delivered into an inbox, or some alive vertex has not voted to halt.
  /// O(workers); replaces the former full-graph scan.
  bool AnyVertexActive(uint64_t delivered_messages) const {
    if (delivered_messages > 0) return true;
    for (const Partition& p : partitions_) {
      if (p.awake_count > 0) return true;
    }
    return false;
  }

  void RunWorker(WorkerCtx* ctx, Computation<Traits>* computation,
                 SuperstepStats* ss, obs::WorkerPhaseProfile* wp) {
    Stopwatch clock;
    obs::JournalSpan span(options_.journal, "compute", "worker",
                          ctx->worker_index(), superstep_);
    const size_t part = static_cast<size_t>(ctx->worker_index());
    // In confined-recovery mode the engine thread already swept this fault
    // site before launching the pool; consulting it again here would burn a
    // second armed hit on the same superstep.
    if (options_.fault_injector != nullptr && !UseConfinedRecovery() &&
        options_.fault_injector->ShouldFail(FaultSite::kWorkerCompute,
                                            ctx->worker_index())) {
      // The simulated worker crash: this worker does no compute at all this
      // superstep, leaving its partition's state mid-superstep-inconsistent
      // — recovery must come from the last checkpoint, not this engine.
      RequestAbort(Status::Unavailable(StrFormat(
          "injected worker crash at superstep %lld, worker %d",
          static_cast<long long>(superstep_), ctx->worker_index())));
      wp->compute_seconds = clock.ElapsedSeconds();
      return;
    }
    Partition& p = partitions_[part];
    uint64_t active = 0;
    int64_t edge_delta = 0;
    int64_t awake_delta = 0;
    for (size_t i = 0; i < p.vertices.size(); ++i) {
      VertexT& v = p.vertices[i];
      if (!v.alive()) continue;
      std::vector<Message>& inbox = msg_store_.Inbox(part, i);
      if (v.halted() && inbox.empty()) continue;
      const bool was_awake = !v.halted();
      v.Activate();
      ++active;
      const int64_t edges_before = static_cast<int64_t>(v.num_edges());
      ctx->BeginVertex(v.id());
      bool failed = false;
      try {
        computation->Compute(*ctx, v, inbox);
      } catch (const WorkerAbortError& e) {
        // Infrastructure failure surfaced inside the compute path (e.g. the
        // Graft instrumenter's trace append failed) — an engine abort, not
        // a user compute error.
        RequestAbort(e.status());
        failed = true;
      } catch (const std::exception& e) {
        RecordComputeError(v.id(), e.what());
        failed = true;
      } catch (...) {
        RecordComputeError(v.id(), "(non-standard exception)");
        failed = true;
      }
      msg_store_.ClearInbox(part, i);
      // Incremental bookkeeping: net local edge mutations and the vote-to-
      // halt transition of this vertex.
      edge_delta += static_cast<int64_t>(v.num_edges()) - edges_before;
      if (was_awake && v.halted()) --awake_delta;
      if (!was_awake && !v.halted()) ++awake_delta;
      if (failed || has_compute_error_.load(std::memory_order_relaxed) ||
          has_abort_.load(std::memory_order_relaxed)) {
        break;  // this or another worker failed
      }
    }
    ctx->FlushStagedSends();
    p.edge_count =
        static_cast<uint64_t>(static_cast<int64_t>(p.edge_count) + edge_delta);
    p.awake_count = static_cast<uint64_t>(
        static_cast<int64_t>(p.awake_count) + awake_delta);
    if (active > 0) p.dirty = true;
    // Local (direct, non-request) edge mutations change the topology too.
    if (edge_delta != 0) MarkTopologyChanged();
    const uint64_t sent = ctx->TakeMessagesSent();
    wp->compute_seconds = clock.ElapsedSeconds();
    wp->vertices_computed = active;
    wp->messages_sent = sent;
    span.End(active);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ss->active_vertices += active;
    ss->messages_sent += sent;
  }

  /// Publishes a barrier-granularity RunReport snapshot to the telemetry
  /// entry so /jobs/<id>/report advances while the job runs. Nothing when
  /// telemetry is off. The live snapshot carries only the most recent
  /// kLiveProgressTail superstep profiles: copying + serializing the full
  /// growing history at every barrier would make progress publishing
  /// O(supersteps^2) over a long run. The final PublishReport in RunJob
  /// ships the complete history.
  static constexpr size_t kLiveProgressTail = 32;
  void PublishProgress(const JobStats& stats, const Stopwatch& total_clock) {
    if (options_.telemetry == nullptr) return;
    obs::RunReport snapshot;
    snapshot.job_id = stats.report.job_id;
    snapshot.num_workers = stats.report.num_workers;
    snapshot.supersteps = superstep_ + 1;
    snapshot.total_seconds = total_clock.ElapsedSeconds();
    snapshot.capture = stats.report.capture;
    snapshot.analysis = stats.report.analysis;
    snapshot.recovery = stats.report.recovery;
    const std::vector<obs::SuperstepProfile>& profiles =
        stats.report.per_superstep;
    const size_t first = profiles.size() > kLiveProgressTail
                             ? profiles.size() - kLiveProgressTail
                             : 0;
    snapshot.per_superstep.assign(
        profiles.begin() + static_cast<std::ptrdiff_t>(first), profiles.end());
    options_.telemetry->PublishReport(snapshot);
  }

  /// One relaxed-cost pointer test when the sanitizer is off; the stamp is
  /// only ~7 atomic stores per superstep when it is on.
  void StampPhase(EnginePhase phase, int64_t superstep) {
    if (options_.phase_clock != nullptr) {
      options_.phase_clock->Set(phase, superstep);
    }
  }

  Status TakeAbortStatus() {
    // A checkpoint spooled this superstep but not yet committed dies with
    // the run: without its COMMIT marker it stays invisible to recovery,
    // and the next attempt's boundary write deletes the leftovers.
    DiscardPendingCheckpoint();
    StampPhase(EnginePhase::kDone, superstep_);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return abort_status_.value_or(
        Status::Internal("abort requested without a status"));
  }

  bool UseConfinedRecovery() const {
    return options_.checkpoint.enabled() && options_.checkpoint.delta() &&
           options_.checkpoint.confined;
  }

  /// Serializes the engine state at the start of superstep `superstep` into
  /// options_.checkpoint.store. Two protocols (CheckpointOptions::mode):
  ///
  ///  * kFull — self-contained per-partition records (all varint-coded):
  ///      alive_count, then per alive vertex in slot order:
  ///        id, value, halted, num_edges, (target, edge_value)*,
  ///        inbox_size, message*
  ///  * kDelta — the topology (id/degree pairs + packed length-prefixed
  ///    edges) goes to a once-per-mutation-epoch part; the checkpoint itself
  ///    writes, and only for partitions dirtied since their last value part,
  ///        alive_count, then per alive vertex in slot order:
  ///          length-prefixed value, halted
  ///    Clean partitions are header-only — the meta's base_superstep keeps
  ///    pointing at their previous part. Inboxes are never snapshotted;
  ///    recovery regenerates them by replaying the outbox log.
  ///
  /// Slot order is load-bearing: restoring in this order reproduces the
  /// original FlatIndex insertion order (dead slots compacted away), which
  /// keeps every downstream iteration order — and hence traces — identical.
  ///
  /// Commit protocol: delete leftovers of a previous partial attempt, spool
  /// part + meta records through ckpt_sink_, then — immediately when
  /// async_parts is off, at the end of the superstep otherwise (see
  /// FinishPendingCheckpoint) — quiesce the sink, Flush, write the COMMIT
  /// marker, Flush, GC. A crash mid-write leaves no COMMIT and the
  /// checkpoint stays invisible to recovery.
  Status WriteCheckpoint(int64_t superstep, uint64_t delivered,
                         uint64_t dropped, const JobStats& stats) {
    Stopwatch clock;
    obs::JournalSpan span(options_.journal, "checkpoint.write", "checkpoint",
                          -1, superstep);
    TraceStore& store = *options_.checkpoint.store;
    const bool delta = options_.checkpoint.delta();
    GRAFT_RETURN_NOT_OK(
        store.DeletePrefix(CheckpointDir(options_.job_id, superstep)));
    uint64_t bytes = 0;
    if (delta) {
      GRAFT_RETURN_NOT_OK(WriteTopologyEpochIfChanged());
    }
    BinaryWriter scratch;
    for (int part = 0; part < options_.num_workers; ++part) {
      Partition& p = partitions_[static_cast<size_t>(part)];
      if (delta && !p.dirty) continue;  // header-only delta
      BinaryWriter w;
      w.WriteVarint(p.alive_count);
      for (size_t i = 0; i < p.vertices.size(); ++i) {
        const VertexT& v = p.vertices[i];
        if (!v.alive()) continue;
        if (delta) {
          scratch.Clear();
          v.value().Write(scratch);
          w.WriteString(scratch.buffer());
          w.WriteBool(v.halted());
          continue;
        }
        w.WriteSignedVarint(v.id());
        v.value().Write(w);
        w.WriteBool(v.halted());
        w.WriteVarint(v.num_edges());
        for (const auto& e : v.edges()) {
          w.WriteSignedVarint(e.target);
          e.value.Write(w);
        }
        const std::vector<Message>& inbox =
            msg_store_.Inbox(static_cast<size_t>(part), i);
        w.WriteVarint(inbox.size());
        for (const Message& m : inbox) m.Write(w);
      }
      bytes += w.size();
      GRAFT_RETURN_NOT_OK(ckpt_sink_->Append(
          CheckpointPartFile(options_.job_id, superstep, part), w.buffer()));
      part_base_superstep_[static_cast<size_t>(part)] = superstep;
      p.dirty = false;
    }
    CheckpointMeta meta;
    meta.superstep = superstep;
    meta.num_partitions = options_.num_workers;
    meta.mode = options_.checkpoint.mode;
    meta.topology_epoch = delta ? topology_epoch_ : 0;
    meta.pending_messages = delivered;
    meta.messages_dropped_at_resume = dropped;
    for (size_t part = 0; part < partitions_.size(); ++part) {
      const Partition& p = partitions_[part];
      meta.partitions.push_back(
          {p.alive_count, p.edge_count, p.awake_count,
           delta ? part_base_superstep_[part] : superstep});
    }
    meta.aggregators = visible_aggregators_;
    meta.total_messages = stats.total_messages;
    meta.total_messages_dropped = stats.total_messages_dropped;
    meta.per_superstep = stats.per_superstep;
    const std::string meta_record = meta.Serialize();
    bytes += meta_record.size();
    GRAFT_RETURN_NOT_OK(ckpt_sink_->Append(
        CheckpointMetaFile(options_.job_id, superstep), meta_record));
    pending_checkpoint_ = true;
    pending_checkpoint_superstep_ = superstep;
    pending_checkpoint_bytes_ = bytes;
    pending_checkpoint_seconds_ = clock.ElapsedSeconds();
    span.End(bytes);
    if (!options_.checkpoint.async_parts) {
      return FinishPendingCheckpoint();
    }
    return Status::OK();
  }

  /// Delta mode: (re)writes the packed-topology parts when any mutation
  /// happened since the last epoch, bumping the epoch and dirtying every
  /// partition so the value deltas re-align with the new slot layout.
  /// Per-partition record (all varint-coded):
  ///   alive_count, then per alive vertex in slot order: id, degree;
  ///   then per vertex, per edge: target, length-prefixed edge value.
  Status WriteTopologyEpochIfChanged() {
    if (!topology_changed_.exchange(false, std::memory_order_relaxed)) {
      return Status::OK();
    }
    ++topology_epoch_;
    TraceStore& store = *options_.checkpoint.store;
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(
        CheckpointTopologyDir(options_.job_id, topology_epoch_)));
    BinaryWriter scratch;
    for (int part = 0; part < options_.num_workers; ++part) {
      Partition& p = partitions_[static_cast<size_t>(part)];
      BinaryWriter w;
      w.WriteVarint(p.alive_count);
      for (const VertexT& v : p.vertices) {
        if (!v.alive()) continue;
        w.WriteSignedVarint(v.id());
        w.WriteVarint(v.num_edges());
      }
      for (const VertexT& v : p.vertices) {
        if (!v.alive()) continue;
        for (const auto& e : v.edges()) {
          w.WriteSignedVarint(e.target);
          scratch.Clear();
          e.value.Write(scratch);
          w.WriteString(scratch.buffer());
        }
      }
      topology_bytes_ += w.size();
      ctr_topology_bytes_->Increment(w.size());
      GRAFT_RETURN_NOT_OK(ckpt_sink_->Append(
          CheckpointTopologyPartFile(options_.job_id, topology_epoch_, part),
          w.buffer()));
      p.dirty = true;
    }
    return Status::OK();
  }

  /// Second half of the commit protocol: quiesce the spool (every part is
  /// durable in the store or the first latched error surfaces here), Flush,
  /// COMMIT, Flush, GC. Runs at the end of the checkpointed superstep in
  /// async mode — the store writes overlap master/compute instead of
  /// stalling the boundary — and inline from WriteCheckpoint otherwise.
  Status FinishPendingCheckpoint() {
    if (!pending_checkpoint_) return Status::OK();
    pending_checkpoint_ = false;
    const int64_t superstep = pending_checkpoint_superstep_;
    Stopwatch clock;
    obs::JournalSpan span(options_.journal, "checkpoint.commit", "checkpoint",
                          -1, superstep);
    TraceStore& store = *options_.checkpoint.store;
    GRAFT_RETURN_NOT_OK(ckpt_sink_->Quiesce());
    GRAFT_RETURN_NOT_OK(store.Flush());
    GRAFT_RETURN_NOT_OK(store.Append(
        CheckpointCommitFile(options_.job_id, superstep), "ok"));
    GRAFT_RETURN_NOT_OK(store.Flush());
    GRAFT_RETURN_NOT_OK(GarbageCollectCheckpoints(store, options_.job_id,
                                                  options_.checkpoint.keep));
    last_committed_checkpoint_ = superstep;
    ckpt_written_ += 1;
    ckpt_bytes_ += pending_checkpoint_bytes_;
    ckpt_seconds_ += pending_checkpoint_seconds_ + clock.ElapsedSeconds();
    ctr_checkpoints_->Increment();
    ctr_checkpoint_bytes_->Increment(pending_checkpoint_bytes_);
    gauge_checkpoint_seconds_->Set(ckpt_seconds_);
    span.End(pending_checkpoint_bytes_);
    return Status::OK();
  }

  void DiscardPendingCheckpoint() {
    if (!pending_checkpoint_) return;
    pending_checkpoint_ = false;
    if (ckpt_sink_ != nullptr) ckpt_sink_->DiscardPending();
  }

  /// Delta mode, called from each delivery worker for its own partition
  /// before Deliver() drains the outboxes: serializes every pending unit —
  /// in the exact deterministic order Deliver() consumes them (senders
  /// ascending; per sender, combined slots in first-touch order, then entry
  /// units in append order) — into one log record. Targets are recorded by
  /// vertex id, not slot: a restore compacts dead slots away, shifting slot
  /// numbers. Record layout:
  ///   u8 version, superstep, partition, unit_count, then per unit:
  ///     u8 kind (0 combined / 1 entry), target id,
  ///     [combined only: pre-combining count], length-prefixed message
  Status AppendOutboxLog(int part) {
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->ShouldFail(FaultSite::kLogAppend, part)) {
      return Status::Unavailable(StrFormat(
          "injected outbox-log append fault at superstep %lld, partition %d",
          static_cast<long long>(superstep_), part));
    }
    const size_t q = static_cast<size_t>(part);
    uint64_t units = 0;
    msg_store_.ForEachPending(
        q, [&](size_t, const Message&, uint32_t) { ++units; },
        [&](VertexId, const Message&) { ++units; });
    if (units == 0) return Status::OK();
    const Partition& p = partitions_[q];
    BinaryWriter w;
    BinaryWriter scratch;
    w.WriteU8(kOutboxLogVersion);
    w.WriteVarint(static_cast<uint64_t>(superstep_));
    w.WriteVarint(q);
    w.WriteVarint(units);
    msg_store_.ForEachPending(
        q,
        [&](size_t slot, const Message& value, uint32_t count) {
          w.WriteU8(0);
          w.WriteSignedVarint(p.vertices[slot].id());
          w.WriteVarint(count);
          scratch.Clear();
          value.Write(scratch);
          w.WriteString(scratch.buffer());
        },
        [&](VertexId target, const Message& message) {
          w.WriteU8(1);
          w.WriteSignedVarint(target);
          scratch.Clear();
          message.Write(scratch);
          w.WriteString(scratch.buffer());
        });
    log_bytes_.fetch_add(w.size(), std::memory_order_relaxed);
    ctr_log_bytes_->Increment(w.size());
    return ckpt_sink_->Append(OutboxLogFile(options_.job_id, superstep_, part),
                              w.buffer());
  }

  /// Delta mode: journals the aggregator values visible to this superstep's
  /// compute (post-master, so SetAggregated overrides are included). The
  /// confined replay loop reads these back instead of re-running the master.
  Status AppendAggLog() {
    if (visible_aggregators_.empty()) return Status::OK();
    BinaryWriter w;
    w.WriteVarint(visible_aggregators_.size());
    for (const auto& [name, value] : visible_aggregators_) {
      w.WriteString(name);
      value.Write(w);
    }
    log_bytes_.fetch_add(w.size(), std::memory_order_relaxed);
    ctr_log_bytes_->Increment(w.size());
    return ckpt_sink_->Append(OutboxAggFile(options_.job_id, superstep_),
                              w.buffer());
  }

  /// Replays the outbox log of superstep `s` into partition `part`'s
  /// inboxes, mirroring Deliver()'s unit order and its alive/missing
  /// verdicts. `delivered`/`dropped` (optional) accumulate pre-combining
  /// counts for the meta assertion.
  Status ReplayLogIntoPartition(int64_t s, int part, uint64_t* delivered,
                                uint64_t* dropped) {
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->ShouldFail(FaultSite::kLogReplay, part)) {
      return Status::Unavailable(StrFormat(
          "injected log-replay fault for superstep %lld, partition %d",
          static_cast<long long>(s), part));
    }
    TraceStore& store = *options_.checkpoint.store;
    const std::string file = OutboxLogFile(options_.job_id, s, part);
    // No log file means nothing was pending for this partition at s.
    if (!store.Exists(file)) return Status::OK();
    GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           store.ReadAll(file));
    if (records.size() != 1) {
      return Status::Internal(
          StrFormat("outbox log %s has %zu records, want 1", file.c_str(),
                    records.size()));
    }
    const size_t q = static_cast<size_t>(part);
    Partition& p = partitions_[q];
    BinaryReader r(records[0]);
    GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
    if (version != kOutboxLogVersion) {
      return Status::InvalidArgument(
          StrFormat("unsupported outbox log version %d", version));
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t rec_superstep, r.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(uint64_t rec_partition, r.ReadVarint());
    if (static_cast<int64_t>(rec_superstep) != s || rec_partition != q) {
      return Status::Internal(StrFormat(
          "outbox log %s claims superstep %llu partition %llu", file.c_str(),
          static_cast<unsigned long long>(rec_superstep),
          static_cast<unsigned long long>(rec_partition)));
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t units, r.ReadVarint());
    for (uint64_t u = 0; u < units; ++u) {
      GRAFT_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
      GRAFT_ASSIGN_OR_RETURN(int64_t target, r.ReadSignedVarint());
      uint64_t count = 1;
      if (kind == 0) {
        GRAFT_ASSIGN_OR_RETURN(count, r.ReadVarint());
      } else if (kind != 1) {
        return Status::Internal(
            StrFormat("unknown outbox log unit kind %d", kind));
      }
      GRAFT_ASSIGN_OR_RETURN(std::string payload, r.ReadString());
      BinaryReader pr(payload);
      GRAFT_ASSIGN_OR_RETURN(Message message, Message::Read(pr));
      const uint32_t slot = p.index.Find(target);
      const bool live =
          slot != FlatIndex::kNotFound && p.vertices[slot].alive();
      if (!live) {
        if (dropped != nullptr) *dropped += count;
        continue;
      }
      if (kind == 0) {
        msg_store_.ReplayCombined(q, slot, message);
      } else {
        msg_store_.ReplayEntry(q, slot, message);
      }
      if (delivered != nullptr) *delivered += count;
    }
    if (!r.AtEnd()) {
      return Status::Internal(
          StrFormat("trailing bytes in outbox log %s", file.c_str()));
    }
    return Status::OK();
  }

  /// Rebuilds one partition from a delta checkpoint: zips the topology part
  /// of `epoch` (ids, degrees, packed edges) with the value part written at
  /// `base` (values, halt flags) in slot order.
  Status RestorePartitionDelta(int part, int64_t epoch, int64_t base) {
    TraceStore& store = *options_.checkpoint.store;
    GRAFT_ASSIGN_OR_RETURN(
        std::vector<std::string> topo_records,
        store.ReadAll(
            CheckpointTopologyPartFile(options_.job_id, epoch, part)));
    if (topo_records.size() != 1) {
      return Status::Internal(StrFormat(
          "topology part %d of epoch %lld has %zu records, want 1", part,
          static_cast<long long>(epoch), topo_records.size()));
    }
    GRAFT_ASSIGN_OR_RETURN(
        std::vector<std::string> value_records,
        store.ReadAll(CheckpointPartFile(options_.job_id, base, part)));
    if (value_records.size() != 1) {
      return Status::Internal(StrFormat(
          "value part %d of checkpoint %lld has %zu records, want 1", part,
          static_cast<long long>(base), value_records.size()));
    }
    BinaryReader tr(topo_records[0]);
    BinaryReader vr(value_records[0]);
    GRAFT_ASSIGN_OR_RETURN(uint64_t alive, tr.ReadVarint());
    GRAFT_ASSIGN_OR_RETURN(uint64_t value_alive, vr.ReadVarint());
    if (alive != value_alive) {
      return Status::Internal(StrFormat(
          "partition %d: topology part holds %llu vertices, value part %llu",
          part, static_cast<unsigned long long>(alive),
          static_cast<unsigned long long>(value_alive)));
    }
    std::vector<int64_t> ids(alive);
    std::vector<uint64_t> degrees(alive);
    for (uint64_t i = 0; i < alive; ++i) {
      GRAFT_ASSIGN_OR_RETURN(ids[i], tr.ReadSignedVarint());
      GRAFT_ASSIGN_OR_RETURN(degrees[i], tr.ReadVarint());
    }
    for (uint64_t i = 0; i < alive; ++i) {
      std::vector<typename VertexT::EdgeT> edges;
      edges.reserve(degrees[i]);
      for (uint64_t e = 0; e < degrees[i]; ++e) {
        GRAFT_ASSIGN_OR_RETURN(int64_t target, tr.ReadSignedVarint());
        GRAFT_ASSIGN_OR_RETURN(std::string edge_payload, tr.ReadString());
        BinaryReader er(edge_payload);
        GRAFT_ASSIGN_OR_RETURN(EdgeValue ev, EdgeValue::Read(er));
        edges.push_back({target, std::move(ev)});
      }
      GRAFT_ASSIGN_OR_RETURN(std::string value_payload, vr.ReadString());
      BinaryReader pr(value_payload);
      GRAFT_ASSIGN_OR_RETURN(VertexValue value, VertexValue::Read(pr));
      GRAFT_ASSIGN_OR_RETURN(bool halted, vr.ReadBool());
      if (PartitionOf(ids[i]) != static_cast<size_t>(part)) {
        return Status::InvalidArgument(StrFormat(
            "vertex %lld checkpointed in partition %d but hashes to %zu — "
            "engine options do not match the checkpointing engine's",
            static_cast<long long>(ids[i]), part, PartitionOf(ids[i])));
      }
      VertexT v(ids[i], std::move(value), std::move(edges));
      if (halted) v.VoteToHalt();
      AddVertexInternal(std::move(v));
    }
    if (!tr.AtEnd() || !vr.AtEnd()) {
      return Status::Internal(
          StrFormat("trailing bytes in delta parts of partition %d", part));
    }
    return Status::OK();
  }

  /// Delta half of RestoreFromCheckpoint: rebuild every partition from
  /// topology + value parts, drop the failed attempt's log records past the
  /// checkpoint, then regenerate the checkpointed superstep's inboxes by
  /// replaying its outbox log — asserting the replayed delivery counts
  /// against the meta's authoritative pending_messages.
  Status RestoreDelta(int64_t superstep, const CheckpointMeta& meta) {
    for (int part = 0; part < options_.num_workers; ++part) {
      const CheckpointMeta::PartitionCounters& c =
          meta.partitions[static_cast<size_t>(part)];
      GRAFT_RETURN_NOT_OK(
          RestorePartitionDelta(part, meta.topology_epoch, c.base_superstep));
      const Partition& p = partitions_[static_cast<size_t>(part)];
      if (p.alive_count != c.alive || p.edge_count != c.edges ||
          p.awake_count != c.awake) {
        return Status::Internal(StrFormat(
            "checkpoint counter drift in partition %d: alive %llu/%llu "
            "edges %llu/%llu awake %llu/%llu (restored/meta)",
            part, static_cast<unsigned long long>(p.alive_count),
            static_cast<unsigned long long>(c.alive),
            static_cast<unsigned long long>(p.edge_count),
            static_cast<unsigned long long>(c.edges),
            static_cast<unsigned long long>(p.awake_count),
            static_cast<unsigned long long>(c.awake)));
      }
    }
    GRAFT_RETURN_NOT_OK(DeleteOutboxLogsAfter(superstep));
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    for (int part = 0; part < options_.num_workers; ++part) {
      GRAFT_RETURN_NOT_OK(
          ReplayLogIntoPartition(superstep, part, &delivered, &dropped));
    }
    if (delivered != meta.pending_messages ||
        dropped != meta.messages_dropped_at_resume) {
      return Status::Internal(StrFormat(
          "outbox log replay disagrees with checkpoint %lld: replayed %llu "
          "delivered / %llu dropped, meta says %llu / %llu",
          static_cast<long long>(superstep),
          static_cast<unsigned long long>(delivered),
          static_cast<unsigned long long>(dropped),
          static_cast<unsigned long long>(meta.pending_messages),
          static_cast<unsigned long long>(meta.messages_dropped_at_resume)));
    }
    topology_epoch_ = meta.topology_epoch;
    for (size_t part = 0; part < partitions_.size(); ++part) {
      part_base_superstep_[part] = meta.partitions[part].base_superstep;
      partitions_[part].dirty = false;
    }
    topology_changed_.store(false, std::memory_order_relaxed);
    last_topology_change_superstep_.store(superstep,
                                          std::memory_order_relaxed);
    return Status::OK();
  }

  /// Drops outbox log dirs the failed attempt wrote past the checkpoint —
  /// the resumed run re-executes those supersteps and re-appends them — and
  /// the checkpointed superstep's aggregator record (its master re-runs on
  /// resume and re-appends an identical one; keeping both would leave two
  /// records in the file).
  Status DeleteOutboxLogsAfter(int64_t checkpoint) {
    TraceStore& store = *options_.checkpoint.store;
    const std::string prefix = OutboxRoot(options_.job_id);
    std::set<int64_t> doomed;
    for (const std::string& file : store.ListFiles(prefix)) {
      const std::string_view rest =
          std::string_view(file).substr(prefix.size());
      const size_t slash = rest.find('/');
      if (slash == std::string_view::npos || rest.substr(0, 1) != "s") {
        continue;
      }
      const int64_t s = std::stoll(std::string(rest.substr(1, slash - 1)));
      if (s > checkpoint) doomed.insert(s);
    }
    for (int64_t s : doomed) {
      GRAFT_RETURN_NOT_OK(
          store.DeletePrefix(OutboxLogDir(options_.job_id, s)));
    }
    return store.DeletePrefix(OutboxAggFile(options_.job_id, checkpoint));
  }

  /// Confined recovery (delta mode): rebuilds the faulted partition in
  /// place — restore it from its checkpoint parts, then roll it forward by
  /// alternating outbox-log replay (regenerates each superstep's inbox) with
  /// a single-partition re-run of the vertex phase under ReplayCtx — while
  /// every healthy partition's state is left untouched. Preconditions
  /// (checked before anything is destroyed): a committed checkpoint exists
  /// and the topology has not changed since it; on failure the caller falls
  /// back to the legacy global abort-and-restart path.
  Status ConfinedRecover(int part) {
    Stopwatch clock;
    GRAFT_RETURN_NOT_OK(FinishPendingCheckpoint());
    if (last_committed_checkpoint_ < 0) {
      return Status::FailedPrecondition(
          "confined recovery needs a committed checkpoint");
    }
    const int64_t checkpoint = last_committed_checkpoint_;
    if (last_topology_change_superstep_.load(std::memory_order_relaxed) >
        checkpoint) {
      return Status::FailedPrecondition(StrFormat(
          "topology mutated after checkpoint %lld — replay window is not "
          "slot-stable",
          static_cast<long long>(checkpoint)));
    }
    obs::JournalSpan span(options_.journal, "checkpoint.confined_recovery",
                          "checkpoint", part, superstep_);
    // Outbox records for this very superstep may still sit in the spool.
    GRAFT_RETURN_NOT_OK(ckpt_sink_->Quiesce());
    const size_t q = static_cast<size_t>(part);
    const uint64_t want_alive = partitions_[q].alive_count;
    const uint64_t want_edges = partitions_[q].edge_count;
    const uint64_t want_awake = partitions_[q].awake_count;
    // The rebuild below re-adds vertices through AddVertexInternal, which
    // flags topology changes; a confined rebuild reconstructs *existing*
    // topology, so the flags are restored once it is done.
    const bool saved_topology_changed =
        topology_changed_.load(std::memory_order_relaxed);
    const int64_t saved_last_change =
        last_topology_change_superstep_.load(std::memory_order_relaxed);
    partitions_[q] = Partition{};
    msg_store_.ResetPartition(q);
    GRAFT_RETURN_NOT_OK(
        RestorePartitionDelta(part, topology_epoch_, part_base_superstep_[q]));
    std::unique_ptr<Computation<Traits>> computation =
        options_.replay_computation != nullptr ? options_.replay_computation()
                                               : computation_factory_();
    GRAFT_CHECK(computation != nullptr);
    ReplayCtx ctx(this, part);
    for (int64_t s = checkpoint;; ++s) {
      GRAFT_RETURN_NOT_OK(ReplayLogIntoPartition(s, part, nullptr, nullptr));
      if (s == superstep_) break;
      GRAFT_RETURN_NOT_OK(ctx.BeginSuperstep(s));
      GRAFT_RETURN_NOT_OK(ReplayPartitionCompute(part, computation.get(),
                                                 &ctx));
    }
    topology_changed_.store(saved_topology_changed,
                            std::memory_order_relaxed);
    last_topology_change_superstep_.store(saved_last_change,
                                          std::memory_order_relaxed);
    Partition& p = partitions_[q];
    if (p.alive_count != want_alive || p.edge_count != want_edges ||
        p.awake_count != want_awake) {
      return Status::Internal(StrFormat(
          "confined replay of partition %d diverged: alive %llu/%llu edges "
          "%llu/%llu awake %llu/%llu (replayed/expected)",
          part, static_cast<unsigned long long>(p.alive_count),
          static_cast<unsigned long long>(want_alive),
          static_cast<unsigned long long>(p.edge_count),
          static_cast<unsigned long long>(want_edges),
          static_cast<unsigned long long>(p.awake_count),
          static_cast<unsigned long long>(want_awake)));
    }
    p.dirty = true;  // conservatively rewrite its next value part
    ++confined_recoveries_;
    ctr_confined_recoveries_->Increment();
    obs::RecoveryEvent event;
    event.attempt = 0;
    event.restored_superstep = checkpoint;
    event.cause = StrFormat(
        "injected worker crash at superstep %lld, worker %d",
        static_cast<long long>(superstep_), part);
    event.restore_seconds = clock.ElapsedSeconds();
    event.confined = true;
    event.partition = part;
    restore_seconds_ += event.restore_seconds;
    gauge_restore_seconds_->Set(restore_seconds_);
    confined_events_.push_back(std::move(event));
    span.End(static_cast<uint64_t>(superstep_ - checkpoint));
    return Status::OK();
  }

  /// Re-runs one partition's vertex phase for the replay superstep held by
  /// `ctx`. Mirrors RunWorker's iteration exactly — slot order, skip rules,
  /// activate-then-compute, inbox cleared after — so the replayed value and
  /// halt transitions are what the lost originals were. The replay window is
  /// mutation-free by precondition, so a local edge mutation here means the
  /// computation is not deterministic and the rebuild is rejected.
  Status ReplayPartitionCompute(int part, Computation<Traits>* computation,
                                ReplayCtx* ctx) {
    Partition& p = partitions_[static_cast<size_t>(part)];
    int64_t awake_delta = 0;
    uint64_t active = 0;
    for (size_t i = 0; i < p.vertices.size(); ++i) {
      VertexT& v = p.vertices[i];
      if (!v.alive()) continue;
      std::vector<Message>& inbox =
          msg_store_.Inbox(static_cast<size_t>(part), i);
      if (v.halted() && inbox.empty()) continue;
      const bool was_awake = !v.halted();
      v.Activate();
      ++active;
      const int64_t edges_before = static_cast<int64_t>(v.num_edges());
      ctx->BeginVertex(v.id());
      try {
        computation->Compute(*ctx, v, inbox);
      } catch (const std::exception& e) {
        return Status::Internal(StrFormat(
            "exception during confined replay at superstep %lld, vertex "
            "%lld: %s",
            static_cast<long long>(ctx->superstep()),
            static_cast<long long>(v.id()), e.what()));
      } catch (...) {
        return Status::Internal(StrFormat(
            "exception during confined replay at superstep %lld, vertex %lld",
            static_cast<long long>(ctx->superstep()),
            static_cast<long long>(v.id())));
      }
      msg_store_.ClearInbox(static_cast<size_t>(part), i);
      if (static_cast<int64_t>(v.num_edges()) != edges_before) {
        return Status::Internal(StrFormat(
            "local edge mutation during confined replay at superstep %lld, "
            "vertex %lld",
            static_cast<long long>(ctx->superstep()),
            static_cast<long long>(v.id())));
      }
      if (was_awake && v.halted()) --awake_delta;
      if (!was_awake && !v.halted()) ++awake_delta;
    }
    p.awake_count = static_cast<uint64_t>(
        static_cast<int64_t>(p.awake_count) + awake_delta);
    confined_replayed_vertices_ += active;
    return Status::OK();
  }

  void RecordComputeError(VertexId id, const std::string& what) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (!compute_error_.has_value()) {
      compute_error_ = StrFormat(
          "exception escaped Compute() at superstep %lld, vertex %lld: %s",
          static_cast<long long>(superstep_), static_cast<long long>(id),
          what.c_str());
    }
    has_compute_error_.store(true, std::memory_order_relaxed);
  }

  void MergeAggregators(std::vector<WorkerCtx>& contexts) {
    // Start from initial (regular) or carried-forward (persistent) values.
    std::map<std::string, AggValue> merged;
    for (const auto& [name, spec] : aggregator_specs_) {
      if (spec.persistent) {
        auto it = visible_aggregators_.find(name);
        merged[name] =
            it == visible_aggregators_.end() ? spec.initial : it->second;
      } else {
        merged[name] = spec.initial;
      }
    }
    for (WorkerCtx& ctx : contexts) {
      for (auto& [name, update] : ctx.partial_aggregations()) {
        auto spec = aggregator_specs_.find(name);
        merged[name] = MergeAggValue(spec->second.op, merged[name], update);
      }
      ctx.partial_aggregations().clear();
    }
    visible_aggregators_ = std::move(merged);
  }

  void ResetVisibleAggregators(
      const std::map<std::string, AggValue>& previous_merged) {
    visible_aggregators_.clear();
    for (const auto& [name, spec] : aggregator_specs_) {
      auto it = previous_merged.find(name);
      visible_aggregators_[name] =
          it == previous_merged.end() ? spec.initial : it->second;
    }
  }

  /// Completes the bookkeeping of a superstep that terminated the job
  /// before its vertex phase (master halt / all halted): the run report
  /// keeps the partial superstep's mutation/delivery/master timings instead
  /// of silently dropping them. Metrics histograms and counters only cover
  /// completed supersteps, so they are not recorded here.
  void RecordPartialSuperstep(JobStats* stats, SuperstepStats* ss,
                              obs::SuperstepProfile* prof,
                              const Stopwatch& superstep_clock) {
    ss->seconds = superstep_clock.ElapsedSeconds();
    prof->total_seconds = ss->seconds;
    prof->partial = true;
    for (obs::WorkerPhaseProfile& wp : prof->workers) {
      wp.barrier_wait_seconds =
          std::max(0.0, prof->delivery_wall_seconds - wp.delivery_seconds);
    }
    stats->per_superstep.push_back(*ss);
    stats->report.per_superstep.push_back(std::move(*prof));
  }

  void FinalizeStats(JobStats* stats, const Stopwatch& clock) {
    // Commit a still-pending async checkpoint at termination — the run may
    // have ended (halt or compute error) before the end-of-superstep commit
    // point. The checkpoint captured start-of-superstep state, so it is
    // valid regardless of how the superstep itself went.
    if (pending_checkpoint_) {
      Status committed = FinishPendingCheckpoint();
      if (!committed.ok()) DiscardPendingCheckpoint();
    }
    StampPhase(EnginePhase::kDone, superstep_);
    UpdateTotalsFromPartitions();
    stats->supersteps = superstep_;
    stats->final_vertices = total_vertices_;
    stats->final_edges = total_edges_;
    stats->total_seconds = clock.ElapsedSeconds();
    stats->report.supersteps = superstep_;
    stats->report.total_seconds = stats->total_seconds;
    stats->report.recovery.checkpoints_enabled =
        options_.checkpoint.enabled();
    stats->report.recovery.checkpoints_written = ckpt_written_;
    stats->report.recovery.checkpoint_bytes = ckpt_bytes_;
    stats->report.recovery.checkpoint_seconds = ckpt_seconds_;
    stats->report.recovery.restore_seconds = restore_seconds_;
    stats->report.recovery.topology_bytes = topology_bytes_;
    stats->report.recovery.log_bytes =
        log_bytes_.load(std::memory_order_relaxed);
    stats->report.recovery.confined_recoveries = confined_recoveries_;
    stats->report.recovery.events = confined_events_;
    stats->report.recovery.recoveries = confined_events_.size();
    // Pool-reuse evidence for the run report consumers: a fixed thread
    // count across a growing number of parallel phases means no per-phase
    // spawn happened.
    gauge_pool_threads_->Set(static_cast<double>(options_.num_workers - 1));
    gauge_pool_phases_->Set(static_cast<double>(pool_.generations()));
    if (options_.telemetry != nullptr) {
      options_.telemetry->PublishReport(stats->report);
    }
  }

  /// Records the completed superstep's phase timings into the metrics
  /// registry (the per-worker shards were written lock-free during the
  /// parallel phases; histograms merge shards on export).
  void RecordSuperstepMetrics(const obs::SuperstepProfile& prof,
                              const SuperstepStats& ss) {
    hist_mutation_->Record(prof.mutation_seconds);
    hist_master_->Record(prof.master_seconds);
    hist_agg_merge_->Record(prof.aggregator_merge_seconds);
    hist_superstep_->Record(prof.total_seconds);
    for (const obs::WorkerPhaseProfile& wp : prof.workers) {
      hist_compute_->Record(wp.compute_seconds, wp.worker);
      hist_delivery_->Record(wp.delivery_seconds, wp.worker);
      hist_barrier_wait_->Record(wp.barrier_wait_seconds, wp.worker);
    }
    ctr_supersteps_->Increment();
    ctr_messages_->Increment(ss.messages_sent);
    ctr_dropped_->Increment(ss.messages_dropped);
    ctr_vertices_computed_->Increment(ss.active_vertices);
  }

  Options options_;
  ComputationFactory<Traits> computation_factory_;
  std::unique_ptr<MasterCompute> master_;
  WorkerPool pool_;
  MessageStore<Message> msg_store_;
  std::vector<Partition> partitions_;
  std::vector<SuperstepObserver*> observers_;

  std::unordered_map<std::string, AggregatorSpec> aggregator_specs_;
  std::map<std::string, AggValue> visible_aggregators_;

  int64_t superstep_ = 0;
  uint64_t total_vertices_ = 0;
  uint64_t total_edges_ = 0;
  bool master_halted_ = false;

  std::mutex stats_mutex_;
  std::optional<std::string> compute_error_;
  std::atomic<bool> has_compute_error_{false};
  std::optional<Status> abort_status_;  // guarded by stats_mutex_
  std::atomic<bool> has_abort_{false};

  // Checkpoint/recovery state. `restored_*` carry checkpointed state from
  // RestoreFromCheckpoint into Run(); the rest is accounting surfaced via
  // the run report and the post-run accessors.
  int64_t resume_superstep_ = 0;
  bool recovered_ = false;
  uint64_t restored_pending_ = 0;
  uint64_t restored_dropped_ = 0;
  std::map<std::string, AggValue> restored_aggregators_;
  std::vector<SuperstepStats> restored_per_superstep_;
  uint64_t restored_total_messages_ = 0;
  uint64_t restored_total_messages_dropped_ = 0;
  uint64_t ckpt_written_ = 0;
  uint64_t ckpt_bytes_ = 0;
  double ckpt_seconds_ = 0.0;
  double restore_seconds_ = 0.0;

  // Delta-checkpoint + outbox-log state (DESIGN.md §12). The sink spools
  // checkpoint parts, topology parts, and outbox-log records off the
  // barrier; COMMIT waits on Quiesce. `topology_epoch_` versions the
  // packed-edge stream; a bump forces every partition dirty so the next
  // delta checkpoint re-bases on the new epoch. `part_base_superstep_`
  // records, per partition, the checkpoint whose value part last covered
  // it (header-only deltas for clean partitions point backwards).
  static constexpr uint8_t kOutboxLogVersion = 1;
  std::unique_ptr<TraceSink> ckpt_sink_;
  int64_t topology_epoch_ = -1;
  std::atomic<bool> topology_changed_{true};
  std::atomic<int64_t> last_topology_change_superstep_{-1};
  std::vector<int64_t> part_base_superstep_;
  int64_t last_committed_checkpoint_ = -1;
  bool pending_checkpoint_ = false;
  int64_t pending_checkpoint_superstep_ = -1;
  uint64_t pending_checkpoint_bytes_ = 0;
  double pending_checkpoint_seconds_ = 0.0;
  uint64_t topology_bytes_ = 0;
  std::atomic<uint64_t> log_bytes_{0};
  uint64_t confined_recoveries_ = 0;
  uint64_t confined_replayed_vertices_ = 0;
  std::vector<obs::RecoveryEvent> confined_events_;

  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* hist_compute_ = nullptr;
  obs::Histogram* hist_delivery_ = nullptr;
  obs::Histogram* hist_barrier_wait_ = nullptr;
  obs::Histogram* hist_mutation_ = nullptr;
  obs::Histogram* hist_master_ = nullptr;
  obs::Histogram* hist_agg_merge_ = nullptr;
  obs::Histogram* hist_superstep_ = nullptr;
  obs::Counter* ctr_supersteps_ = nullptr;
  obs::Counter* ctr_messages_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_vertices_computed_ = nullptr;
  obs::Gauge* gauge_pool_threads_ = nullptr;
  obs::Gauge* gauge_pool_phases_ = nullptr;
  obs::Counter* ctr_checkpoints_ = nullptr;
  obs::Counter* ctr_checkpoint_bytes_ = nullptr;
  obs::Gauge* gauge_checkpoint_seconds_ = nullptr;
  obs::Gauge* gauge_restore_seconds_ = nullptr;
  obs::Counter* ctr_topology_bytes_ = nullptr;
  obs::Counter* ctr_log_bytes_ = nullptr;
  obs::Counter* ctr_confined_recoveries_ = nullptr;
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_ENGINE_H_
