#ifndef GRAFT_PREGEL_AGG_VALUE_H_
#define GRAFT_PREGEL_AGG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/binary_io.h"
#include "common/result.h"

namespace graft {
namespace pregel {

/// Dynamically-typed aggregator value. Giraph aggregators are Writable-typed
/// objects registered by name; a small closed variant keeps master traces
/// serializable and the GUI's aggregator panel renderable without knowing
/// user types (DESIGN.md §2).
class AggValue {
 public:
  AggValue() = default;
  explicit AggValue(int64_t v) : value_(v) {}
  explicit AggValue(double v) : value_(v) {}
  explicit AggValue(bool v) : value_(v) {}
  explicit AggValue(std::string v) : value_(std::move(v)) {}

  bool IsNull() const { return std::holds_alternative<std::monostate>(value_); }
  bool IsInt() const { return std::holds_alternative<int64_t>(value_); }
  bool IsDouble() const { return std::holds_alternative<double>(value_); }
  bool IsBool() const { return std::holds_alternative<bool>(value_); }
  bool IsText() const { return std::holds_alternative<std::string>(value_); }

  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  bool AsBool() const { return std::get<bool>(value_); }
  const std::string& AsText() const { return std::get<std::string>(value_); }

  /// Human-readable rendering: "null", "42", "3.14", "true", "\"PHASE-1\"".
  std::string ToString() const;

  /// C++ source expression reconstructing this value (used by the Context
  /// Reproducer's generated test files, §3.3).
  std::string ToCpp() const;

  void Write(BinaryWriter& writer) const;
  static Result<AggValue> Read(BinaryReader& reader);

  friend bool operator==(const AggValue& a, const AggValue& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> value_;
};

/// Built-in merge semantics, matching Giraph's stock aggregator classes.
/// Regular aggregators reset to their initial value every superstep;
/// persistent ones keep accumulating (Giraph's registerPersistentAggregator).
enum class AggregatorOp : uint8_t {
  kSum,        // int64 or double
  kMin,        // int64, double, or text
  kMax,        // int64, double, or text
  kAnd,        // bool
  kOr,         // bool
  kOverwrite,  // last write wins (master typically uses this for phases)
};

/// Merges `update` into `accumulator` under `op`. Type mismatches between
/// accumulator and update are programming errors and abort.
AggValue MergeAggValue(AggregatorOp op, const AggValue& accumulator,
                       const AggValue& update);

std::string_view AggregatorOpName(AggregatorOp op);

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_AGG_VALUE_H_
