#ifndef GRAFT_PREGEL_COMPUTE_CONTEXT_H_
#define GRAFT_PREGEL_COMPUTE_CONTEXT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/random.h"
#include "pregel/agg_value.h"
#include "pregel/vertex.h"

namespace graft {
namespace pregel {

/// Everything a vertex program may touch besides the vertex itself and its
/// incoming messages — i.e. items (4) and (5) of the Giraph API context
/// (§2): aggregators and default global data, plus message sending and
/// topology-mutation requests.
///
/// This is an abstract interface on purpose: the engine implements it for
/// cluster execution, Graft's instrumenter wraps it to intercept sends and
/// check message constraints (§3.1), and the Context Reproducer implements a
/// mock of it to replay a captured vertex in isolation (§3.3).
template <JobTraits Traits>
class ComputeContext {
 public:
  using Message = typename Traits::Message;
  using EdgeValue = typename Traits::EdgeValue;

  virtual ~ComputeContext() = default;

  /// Default global data (Giraph GraphState).
  virtual int64_t superstep() const = 0;
  virtual int64_t total_num_vertices() const = 0;
  virtual int64_t total_num_edges() const = 0;

  /// Sends `message` to be delivered to `target` in superstep()+1.
  virtual void SendMessage(VertexId target, const Message& message) = 0;

  /// Aggregator value visible this superstep (merged result of superstep-1,
  /// possibly overwritten by master.compute). Null AggValue when the name
  /// is unknown, matching Giraph's null return.
  virtual AggValue GetAggregated(const std::string& name) const = 0;

  /// Folds `update` into the named aggregator for this superstep.
  virtual void Aggregate(const std::string& name, const AggValue& update) = 0;

  /// All aggregator values visible this superstep; what Graft captures into
  /// the vertex context trace.
  virtual const std::map<std::string, AggValue>& VisibleAggregators()
      const = 0;

  /// Deterministic per-(job seed, superstep, vertex) random stream; part of
  /// the captured context so that replay is exact (DESIGN.md §1).
  virtual Rng& rng() = 0;

  /// Pregel topology mutation requests, applied between supersteps.
  virtual void RemoveVertexRequest(VertexId id) = 0;
  virtual void AddEdgeRequest(VertexId source, VertexId target,
                              const EdgeValue& value) = 0;
  virtual void RemoveEdgeRequest(VertexId source, VertexId target) = 0;

  /// Index of the worker executing this Compute() call (trace file naming).
  virtual int worker_index() const = 0;

  /// Sends `message` along every out-edge of `vertex`.
  void SendMessageToAllEdges(const Vertex<Traits>& vertex,
                             const Message& message) {
    for (const auto& edge : vertex.edges()) {
      SendMessage(edge.target, message);
    }
  }
};

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_COMPUTE_CONTEXT_H_
