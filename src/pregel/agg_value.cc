#include "pregel/agg_value.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace graft {
namespace pregel {

namespace {
enum Tag : uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagBool = 3,
  kTagText = 4,
};
}  // namespace

std::string AggValue::ToString() const {
  if (IsNull()) return "null";
  if (IsInt()) return std::to_string(AsInt());
  if (IsDouble()) return StrFormat("%g", AsDouble());
  if (IsBool()) return AsBool() ? "true" : "false";
  return "\"" + AsText() + "\"";
}

std::string AggValue::ToCpp() const {
  if (IsNull()) return "graft::pregel::AggValue{}";
  if (IsInt()) {
    return StrFormat("graft::pregel::AggValue{int64_t{%lld}}",
                     static_cast<long long>(AsInt()));
  }
  if (IsDouble()) return StrFormat("graft::pregel::AggValue{%.17g}", AsDouble());
  if (IsBool()) {
    return std::string("graft::pregel::AggValue{") +
           (AsBool() ? "true" : "false") + "}";
  }
  // Escape the string through the JSON escaper rules (C-compatible subset).
  std::string escaped;
  for (char c : AsText()) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return "graft::pregel::AggValue{std::string(\"" + escaped + "\")}";
}

void AggValue::Write(BinaryWriter& writer) const {
  if (IsNull()) {
    writer.WriteU8(kTagNull);
  } else if (IsInt()) {
    writer.WriteU8(kTagInt);
    writer.WriteSignedVarint(AsInt());
  } else if (IsDouble()) {
    writer.WriteU8(kTagDouble);
    writer.WriteDouble(AsDouble());
  } else if (IsBool()) {
    writer.WriteU8(kTagBool);
    writer.WriteBool(AsBool());
  } else {
    writer.WriteU8(kTagText);
    writer.WriteString(AsText());
  }
}

Result<AggValue> AggValue::Read(BinaryReader& reader) {
  GRAFT_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  switch (tag) {
    case kTagNull:
      return AggValue{};
    case kTagInt: {
      GRAFT_ASSIGN_OR_RETURN(int64_t v, reader.ReadSignedVarint());
      return AggValue{v};
    }
    case kTagDouble: {
      GRAFT_ASSIGN_OR_RETURN(double v, reader.ReadDouble());
      return AggValue{v};
    }
    case kTagBool: {
      GRAFT_ASSIGN_OR_RETURN(bool v, reader.ReadBool());
      return AggValue{v};
    }
    case kTagText: {
      GRAFT_ASSIGN_OR_RETURN(std::string v, reader.ReadString());
      return AggValue{std::move(v)};
    }
    default:
      return Status::OutOfRange("bad AggValue tag " + std::to_string(tag));
  }
}

AggValue MergeAggValue(AggregatorOp op, const AggValue& accumulator,
                       const AggValue& update) {
  if (op == AggregatorOp::kOverwrite) return update;
  // A null accumulator adopts the first update (fresh regular aggregator).
  if (accumulator.IsNull()) return update;
  if (update.IsNull()) return accumulator;
  switch (op) {
    case AggregatorOp::kSum:
      if (accumulator.IsInt() && update.IsInt()) {
        return AggValue{accumulator.AsInt() + update.AsInt()};
      }
      if (accumulator.IsDouble() && update.IsDouble()) {
        return AggValue{accumulator.AsDouble() + update.AsDouble()};
      }
      break;
    case AggregatorOp::kMin:
      if (accumulator.IsInt() && update.IsInt()) {
        return AggValue{std::min(accumulator.AsInt(), update.AsInt())};
      }
      if (accumulator.IsDouble() && update.IsDouble()) {
        return AggValue{std::min(accumulator.AsDouble(), update.AsDouble())};
      }
      if (accumulator.IsText() && update.IsText()) {
        return AggValue{std::min(accumulator.AsText(), update.AsText())};
      }
      break;
    case AggregatorOp::kMax:
      if (accumulator.IsInt() && update.IsInt()) {
        return AggValue{std::max(accumulator.AsInt(), update.AsInt())};
      }
      if (accumulator.IsDouble() && update.IsDouble()) {
        return AggValue{std::max(accumulator.AsDouble(), update.AsDouble())};
      }
      if (accumulator.IsText() && update.IsText()) {
        return AggValue{std::max(accumulator.AsText(), update.AsText())};
      }
      break;
    case AggregatorOp::kAnd:
      if (accumulator.IsBool() && update.IsBool()) {
        return AggValue{accumulator.AsBool() && update.AsBool()};
      }
      break;
    case AggregatorOp::kOr:
      if (accumulator.IsBool() && update.IsBool()) {
        return AggValue{accumulator.AsBool() || update.AsBool()};
      }
      break;
    case AggregatorOp::kOverwrite:
      break;  // handled above
  }
  GRAFT_LOG(Fatal) << "aggregator type mismatch: cannot "
                   << AggregatorOpName(op) << "-merge "
                   << accumulator.ToString() << " with " << update.ToString();
  return update;  // unreachable
}

std::string_view AggregatorOpName(AggregatorOp op) {
  switch (op) {
    case AggregatorOp::kSum:
      return "Sum";
    case AggregatorOp::kMin:
      return "Min";
    case AggregatorOp::kMax:
      return "Max";
    case AggregatorOp::kAnd:
      return "And";
    case AggregatorOp::kOr:
      return "Or";
    case AggregatorOp::kOverwrite:
      return "Overwrite";
  }
  return "?";
}

}  // namespace pregel
}  // namespace graft
