#ifndef GRAFT_PREGEL_VALUE_TYPES_H_
#define GRAFT_PREGEL_VALUE_TYPES_H_

#include <concepts>
#include <cstdint>
#include <string>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/string_util.h"

namespace graft {
namespace pregel {

/// The C++ analogue of Giraph's Writable contract. Every vertex value, edge
/// value, and message type must satisfy this so that Graft can serialize
/// vertex contexts into trace files (§3.1), render them in the GUI (§3.2),
/// and bake them into generated test code as literals (§3.3).
template <typename T>
concept WritableValue = requires(const T& v, BinaryWriter& w, BinaryReader& r) {
  { v.Write(w) } -> std::same_as<void>;
  { T::Read(r) } -> std::same_as<Result<T>>;
  { v.ToString() } -> std::same_as<std::string>;
  { v.ToCpp() } -> std::same_as<std::string>;
  { v == v } -> std::convertible_to<bool>;
  requires std::default_initializable<T>;
  requires std::copy_constructible<T>;
};

/// Analogue of Giraph's NullWritable: carries no data (used as the edge
/// value of unweighted graphs and as a placeholder message type).
struct NullValue {
  void Write(BinaryWriter&) const {}
  static Result<NullValue> Read(BinaryReader&) { return NullValue{}; }
  std::string ToString() const { return "-"; }
  std::string ToCpp() const { return "graft::pregel::NullValue{}"; }
  friend bool operator==(const NullValue&, const NullValue&) { return true; }
};

/// Analogue of LongWritable.
struct Int64Value {
  int64_t value = 0;

  void Write(BinaryWriter& w) const { w.WriteSignedVarint(value); }
  static Result<Int64Value> Read(BinaryReader& r) {
    GRAFT_ASSIGN_OR_RETURN(int64_t v, r.ReadSignedVarint());
    return Int64Value{v};
  }
  std::string ToString() const { return std::to_string(value); }
  std::string ToCpp() const {
    return StrFormat("graft::pregel::Int64Value{%lld}",
                     static_cast<long long>(value));
  }
  friend bool operator==(const Int64Value&, const Int64Value&) = default;
};

/// Analogue of DoubleWritable.
struct DoubleValue {
  double value = 0.0;

  void Write(BinaryWriter& w) const { w.WriteDouble(value); }
  static Result<DoubleValue> Read(BinaryReader& r) {
    GRAFT_ASSIGN_OR_RETURN(double v, r.ReadDouble());
    return DoubleValue{v};
  }
  std::string ToString() const { return StrFormat("%g", value); }
  std::string ToCpp() const {
    return StrFormat("graft::pregel::DoubleValue{%.17g}", value);
  }
  friend bool operator==(const DoubleValue&, const DoubleValue&) = default;
};

/// 16-bit counter value — the type at the heart of the paper's Random Walk
/// debugging scenario (§4.2): "our implementation declares the counters and
/// messages as 16-bit short primitive types", which overflow past 32767 and
/// turn walker counts negative. Arithmetic on `value` wraps exactly like a
/// Java short.
struct ShortValue {
  int16_t value = 0;

  void Write(BinaryWriter& w) const { w.WriteSignedVarint(value); }
  static Result<ShortValue> Read(BinaryReader& r) {
    GRAFT_ASSIGN_OR_RETURN(int64_t v, r.ReadSignedVarint());
    return ShortValue{static_cast<int16_t>(v)};
  }
  std::string ToString() const { return std::to_string(value); }
  std::string ToCpp() const {
    return StrFormat("graft::pregel::ShortValue{int16_t{%d}}",
                     static_cast<int>(value));
  }
  friend bool operator==(const ShortValue&, const ShortValue&) = default;
};

/// Analogue of Text.
struct TextValue {
  std::string value;

  void Write(BinaryWriter& w) const { w.WriteString(value); }
  static Result<TextValue> Read(BinaryReader& r) {
    GRAFT_ASSIGN_OR_RETURN(std::string v, r.ReadString());
    return TextValue{std::move(v)};
  }
  std::string ToString() const { return value; }
  std::string ToCpp() const {
    std::string escaped;
    for (char c : value) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    return "graft::pregel::TextValue{\"" + escaped + "\"}";
  }
  friend bool operator==(const TextValue&, const TextValue&) = default;
};

static_assert(WritableValue<NullValue>);
static_assert(WritableValue<Int64Value>);
static_assert(WritableValue<DoubleValue>);
static_assert(WritableValue<ShortValue>);
static_assert(WritableValue<TextValue>);

}  // namespace pregel
}  // namespace graft

#endif  // GRAFT_PREGEL_VALUE_TYPES_H_
