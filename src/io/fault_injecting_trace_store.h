#ifndef GRAFT_IO_FAULT_INJECTING_TRACE_STORE_H_
#define GRAFT_IO_FAULT_INJECTING_TRACE_STORE_H_

#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "io/trace_store.h"

namespace graft {

/// TraceStore decorator that consults a FaultInjector on every Append and
/// Flush, failing them with Status::Unavailable when a kStoreAppend /
/// kStoreFlush fault is armed for the current superstep. Reads and
/// administrative operations (ListFiles, DeletePrefix, ...) always pass
/// through — the injector models write-path infrastructure failures, and
/// recovery itself must be able to read checkpoints back.
///
/// Successful operations are mirrored into this store's own IoStats so
/// capture-overhead accounting keeps working when callers hold the wrapper.
class FaultInjectingTraceStore final : public TraceStore {
 public:
  FaultInjectingTraceStore(TraceStore* inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {
    GRAFT_CHECK(inner_ != nullptr);
    GRAFT_CHECK(injector_ != nullptr);
  }

  Status Append(const std::string& file, std::string_view record) override {
    if (injector_->ShouldFail(FaultSite::kStoreAppend)) {
      return Status::Unavailable(
          "injected store-append fault at superstep " +
          std::to_string(injector_->current_superstep()) + " (" + file + ")");
    }
    Stopwatch clock;
    Status status = inner_->Append(file, record);
    if (status.ok()) AccountAppend(record.size(), clock.ElapsedSeconds());
    return status;
  }

  Result<std::vector<std::string>> ReadAll(
      const std::string& file) const override {
    return inner_->ReadAll(file);
  }

  bool Exists(const std::string& file) const override {
    return inner_->Exists(file);
  }

  std::vector<std::string> ListFiles(
      const std::string& prefix) const override {
    return inner_->ListFiles(prefix);
  }

  uint64_t TotalBytes(const std::string& prefix) const override {
    return inner_->TotalBytes(prefix);
  }

  uint64_t RecordCount(const std::string& file) const override {
    return inner_->RecordCount(file);
  }

  Status DeletePrefix(const std::string& prefix) override {
    return inner_->DeletePrefix(prefix);
  }

  Status Flush() override {
    if (injector_->ShouldFail(FaultSite::kStoreFlush)) {
      return Status::Unavailable(
          "injected store-flush fault at superstep " +
          std::to_string(injector_->current_superstep()));
    }
    Stopwatch clock;
    Status status = inner_->Flush();
    if (status.ok()) AccountFlush(clock.ElapsedSeconds());
    return status;
  }

  TraceStore* inner() const { return inner_; }

 private:
  TraceStore* inner_;
  FaultInjector* injector_;
};

}  // namespace graft

#endif  // GRAFT_IO_FAULT_INJECTING_TRACE_STORE_H_
