#include "io/trace_sink.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "obs/event_journal.h"

namespace graft {

// ---------------------------------------------------------------------------
// SyncTraceSink
// ---------------------------------------------------------------------------

SyncTraceSink::SyncTraceSink(TraceStore* store) : store_(store) {}

Status SyncTraceSink::Append(const std::string& file,
                             std::string_view record) {
  Stopwatch clock;
  Status status = store_->Append(file, record);
  const double seconds = clock.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.append_seconds += seconds;
  if (status.ok()) {
    ++stats_.appends;
    stats_.bytes += record.size();
  }
  return status;
}

TraceSinkStats SyncTraceSink::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SyncTraceSink::RestoreStats(const TraceSinkStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = stats;
}

// ---------------------------------------------------------------------------
// SpoolingTraceSink
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_next_sink_id{1};
}  // namespace

SpoolingTraceSink::SpoolingTraceSink(TraceStore* store,
                                     const TraceSinkOptions& options)
    : store_(store),
      options_(options),
      sink_id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.max_batch_bytes == 0) options_.max_batch_bytes = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

SpoolingTraceSink::~SpoolingTraceSink() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
    queue_.clear();
    queue_not_empty_.notify_all();
    queue_not_full_.notify_all();
  }
  flusher_.join();
}

SpoolingTraceSink::ThreadSlot* SpoolingTraceSink::SlotForThisThread() {
  // One cached (sink, slot) pair per thread: within a job every producer
  // thread talks to exactly one sink, so the registry lock is taken once per
  // thread lifetime. Sink ids are never reused, so a stale cache entry from
  // a destroyed sink can't alias a new one.
  struct Cache {
    uint64_t sink_id = 0;
    ThreadSlot* slot = nullptr;
  };
  thread_local Cache cache;
  if (cache.sink_id == sink_id_) return cache.slot;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  slots_.push_back(std::make_unique<ThreadSlot>());
  cache = {sink_id_, slots_.back().get()};
  return cache.slot;
}

Status SpoolingTraceSink::Append(const std::string& file,
                                 std::string_view record) {
  if (has_error_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return error_;
  }
  ThreadSlot* slot = SlotForThisThread();
  Status result = Status::OK();
  {
    std::lock_guard<std::mutex> slot_lock(slot->mutex);
    Batch& open = slot->open;
    if (!open.file.empty() && open.file != file) {
      Batch sealed = std::move(open);
      open = Batch{};
      result = SealAndEnqueue(std::move(sealed));
    }
    if (result.ok()) {
      if (open.file.empty()) open.file = file;
      open.arena.append(record.data(), record.size());
      open.sizes.push_back(static_cast<uint32_t>(record.size()));
      if (open.arena.size() >= options_.max_batch_bytes) {
        Batch sealed = std::move(open);
        open = Batch{};
        result = SealAndEnqueue(std::move(sealed));
      }
    }
  }
  return result;
}

Status SpoolingTraceSink::SealAndEnqueue(Batch&& batch) {
  Stopwatch clock;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (queue_.size() >= options_.queue_capacity && error_.ok() && !stop_) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.backpressure_waits;
    }
    queue_not_full_.wait(lock);
  }
  if (!error_.ok()) return error_;
  if (stop_) return Status::FailedPrecondition("trace sink is shut down");
  queue_.push_back(std::move(batch));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.batches;
    stats_.max_queue_depth =
        std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
    stats_.append_seconds += clock.ElapsedSeconds();
  }
  // Notify after unlocking so the woken flusher doesn't immediately block
  // on queue_mutex_ (and, on a loaded box, preempt this producer while it
  // still holds the lock).
  lock.unlock();
  queue_not_empty_.notify_one();
  return Status::OK();
}

void SpoolingTraceSink::FlusherLoop() {
  for (;;) {
    Batch batch;
    bool drop;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with nothing left
      batch = std::move(queue_.front());
      queue_.pop_front();
      flusher_busy_ = true;
      drop = !error_.ok();
      queue_not_full_.notify_all();
    }
    Status status = Status::OK();
    if (!drop) {
      obs::JournalSpan span(options_.journal, "capture.flush", "capture", -1,
                            -1);
      Stopwatch clock;
      uint64_t written = 0;
      uint64_t bytes = 0;
      size_t offset = 0;
      for (uint32_t size : batch.sizes) {
        std::string_view record(batch.arena.data() + offset, size);
        status = store_->Append(batch.file, record);
        if (!status.ok()) break;
        offset += size;
        ++written;
        bytes += size;
      }
      const double seconds = clock.ElapsedSeconds();
      span.End(bytes);
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.appends += written;
      stats_.bytes += bytes;
      stats_.flush_seconds += seconds;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      flusher_busy_ = false;
      if (!status.ok() && error_.ok()) {
        error_ = status;
        has_error_.store(true, std::memory_order_release);
        // Producers blocked on backpressure must observe the error.
        queue_not_full_.notify_all();
      }
      if (queue_.empty()) queue_drained_.notify_all();
    }
  }
}

Status SpoolingTraceSink::Quiesce() {
  {
    std::lock_guard<std::mutex> slots_lock(slots_mutex_);
    SealAllSlotsLocked();
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_drained_.wait(
      lock, [&] { return (queue_.empty() && !flusher_busy_) || stop_; });
  return error_;
}

void SpoolingTraceSink::SealAllSlotsLocked() {
  for (auto& slot : slots_) {
    Batch sealed;
    {
      std::lock_guard<std::mutex> slot_lock(slot->mutex);
      if (slot->open.sizes.empty()) continue;
      sealed = std::move(slot->open);
      slot->open = Batch{};
    }
    // A latched error is fine here: the batch is dropped and Quiesce
    // returns the error after draining.
    (void)SealAndEnqueue(std::move(sealed));
  }
}

void SpoolingTraceSink::DiscardPending() {
  {
    std::lock_guard<std::mutex> slots_lock(slots_mutex_);
    for (auto& slot : slots_) {
      std::lock_guard<std::mutex> slot_lock(slot->mutex);
      slot->open = Batch{};
    }
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_.clear();
  // Wait out a batch the flusher already popped: its writes must not land
  // after the recovery prune that follows this call.
  queue_drained_.wait(lock, [&] { return !flusher_busy_ || stop_; });
  error_ = Status::OK();
  has_error_.store(false, std::memory_order_release);
  queue_not_full_.notify_all();
}

TraceSinkStats SpoolingTraceSink::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SpoolingTraceSink::RestoreStats(const TraceSinkStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = stats;
}

std::unique_ptr<TraceSink> MakeTraceSink(TraceStore* store,
                                         const TraceSinkOptions& options) {
  if (options.async) {
    return std::make_unique<SpoolingTraceSink>(store, options);
  }
  return std::make_unique<SyncTraceSink>(store);
}

}  // namespace graft
