#include "io/trace_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace graft {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// TraceStore
// ---------------------------------------------------------------------------

Result<std::string> TraceStore::ReadRecord(const std::string& file,
                                           uint64_t index) const {
  GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records, ReadAll(file));
  if (index >= records.size()) {
    return Status::OutOfRange(
        StrFormat("record %llu out of range in '%s' (%zu records)",
                  static_cast<unsigned long long>(index), file.c_str(),
                  records.size()));
  }
  return std::move(records[index]);
}

// ---------------------------------------------------------------------------
// InMemoryTraceStore
// ---------------------------------------------------------------------------

Status InMemoryTraceStore::Append(const std::string& file,
                                  std::string_view record) {
  Stopwatch clock;
  uint64_t framed_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FileData& data = files_[file];
    data.records.emplace_back(record);
    // Account the varint framing the durable store would write, so byte
    // totals are comparable between backends.
    uint64_t len = record.size();
    uint64_t framing = 1;
    while (len >= 0x80) {
      len >>= 7;
      ++framing;
    }
    framed_bytes = record.size() + framing;
    data.bytes += framed_bytes;
  }
  AccountAppend(framed_bytes, clock.ElapsedSeconds());
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryTraceStore::ReadAll(
    const std::string& file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("trace file not found: " + file);
  }
  return it->second.records;
}

Result<std::string> InMemoryTraceStore::ReadRecord(const std::string& file,
                                                   uint64_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("trace file not found: " + file);
  }
  const std::vector<std::string>& records = it->second.records;
  if (index >= records.size()) {
    return Status::OutOfRange(
        StrFormat("record %llu out of range in '%s' (%zu records)",
                  static_cast<unsigned long long>(index), file.c_str(),
                  records.size()));
  }
  return records[index];
}

bool InMemoryTraceStore::Exists(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(file) > 0;
}

std::vector<std::string> InMemoryTraceStore::ListFiles(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    names.push_back(it->first);
  }
  return names;
}

uint64_t InMemoryTraceStore::TotalBytes(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second.bytes;
  }
  return total;
}

uint64_t InMemoryTraceStore::RecordCount(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.records.size();
}

Status InMemoryTraceStore::DeletePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.lower_bound(prefix);
  while (it != files_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    it = files_.erase(it);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LocalDirTraceStore
// ---------------------------------------------------------------------------

LocalDirTraceStore::LocalDirTraceStore(std::string root_dir)
    : root_dir_(std::move(root_dir)) {}

LocalDirTraceStore::~LocalDirTraceStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, fd] : fds_) ::close(fd);
}

Result<std::unique_ptr<LocalDirTraceStore>> LocalDirTraceStore::Open(
    const std::string& root_dir) {
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::IOError("cannot create trace root '" + root_dir +
                           "': " + ec.message());
  }
  return std::unique_ptr<LocalDirTraceStore>(new LocalDirTraceStore(root_dir));
}

std::string LocalDirTraceStore::PathFor(const std::string& file) const {
  return root_dir_ + "/" + file;
}

std::string LocalDirTraceStore::KeyFor(const std::string& path) const {
  // Strips "<root>/" from an absolute path produced by directory iteration.
  return path.substr(root_dir_.size() + 1);
}

Status LocalDirTraceStore::Append(const std::string& file,
                                  std::string_view record) {
  Stopwatch clock;
  std::lock_guard<std::mutex> lock(mutex_);
  int fd = -1;
  auto it = fds_.find(file);
  if (it != fds_.end()) {
    fd = it->second;
  } else {
    std::string path = PathFor(file);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directories for '" + path +
                             "': " + ec.message());
    }
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      return Status::IOError("cannot open '" + path +
                             "': " + std::strerror(errno));
    }
    fds_[file] = fd;
  }
  BinaryWriter framed;
  framed.WriteVarint(record.size());
  framed.WriteRaw(record.data(), record.size());
  const std::string& buf = framed.buffer();
  size_t written = 0;
  while (written < buf.size()) {
    ssize_t n = ::write(fd, buf.data() + written, buf.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write to '" + file +
                             "' failed: " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  AccountAppend(buf.size(), clock.ElapsedSeconds());
  return Status::OK();
}

Result<std::vector<std::string>> LocalDirTraceStore::ReadAll(
    const std::string& file) const {
  std::string path = PathFor(file);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Status::NotFound("trace file not found: " + file);
  }
  // Read the whole file then split into framed records.
  std::string contents;
  {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open '" + path +
                             "': " + std::strerror(errno));
    }
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
      contents.append(buf, static_cast<size_t>(n));
    }
    int saved_errno = errno;
    ::close(fd);
    if (n < 0) {
      return Status::IOError("read of '" + path +
                             "' failed: " + std::strerror(saved_errno));
    }
  }
  std::vector<std::string> records;
  BinaryReader reader(contents);
  while (!reader.AtEnd()) {
    auto size = reader.ReadVarint();
    if (!size.ok()) return size.status();
    if (reader.remaining() < *size) {
      return Status::IOError("truncated record in trace file: " + file);
    }
    records.emplace_back(
        contents.substr(reader.position(), static_cast<size_t>(*size)));
    GRAFT_RETURN_NOT_OK(reader.Skip(static_cast<size_t>(*size)));
  }
  return records;
}

Result<std::string> LocalDirTraceStore::ReadRecord(const std::string& file,
                                                   uint64_t index) const {
  std::string path = PathFor(file);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("trace file not found: " + file);
    }
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  // Walk the varint frames, skipping over record payloads with lseek so only
  // the target record is materialized. Frame headers are at most 10 bytes.
  uint64_t current = 0;
  Result<std::string> result =
      Status::OutOfRange(StrFormat("record %llu out of range in '%s'",
                                   static_cast<unsigned long long>(index),
                                   file.c_str()));
  for (;;) {
    char header[10];
    ssize_t n = ::read(fd, header, sizeof(header));
    if (n < 0) {
      if (errno == EINTR) continue;
      result = Status::IOError("read of '" + path +
                               "' failed: " + std::strerror(errno));
      break;
    }
    if (n == 0) break;  // clean EOF: index past the last record
    BinaryReader reader(std::string_view(header, static_cast<size_t>(n)));
    auto size = reader.ReadVarint();
    if (!size.ok()) {
      result = size.status();
      break;
    }
    // Position of the payload start relative to the bytes just read.
    off_t rewind = static_cast<off_t>(reader.position()) - n;
    if (current == index) {
      if (rewind != 0 && ::lseek(fd, rewind, SEEK_CUR) < 0) {
        result = Status::IOError("seek in '" + path +
                                 "' failed: " + std::strerror(errno));
        break;
      }
      std::string record(static_cast<size_t>(*size), '\0');
      size_t got = 0;
      bool read_ok = true;
      while (got < record.size()) {
        ssize_t m = ::read(fd, record.data() + got, record.size() - got);
        if (m < 0) {
          if (errno == EINTR) continue;
          result = Status::IOError("read of '" + path +
                                   "' failed: " + std::strerror(errno));
          read_ok = false;
          break;
        }
        if (m == 0) {
          result = Status::IOError("truncated record in trace file: " + file);
          read_ok = false;
          break;
        }
        got += static_cast<size_t>(m);
      }
      if (read_ok) result = std::move(record);
      break;
    }
    off_t skip = rewind + static_cast<off_t>(*size);
    if (::lseek(fd, skip, SEEK_CUR) < 0) {
      result = Status::IOError("seek in '" + path +
                               "' failed: " + std::strerror(errno));
      break;
    }
    ++current;
  }
  ::close(fd);
  return result;
}

bool LocalDirTraceStore::Exists(const std::string& file) const {
  std::error_code ec;
  return fs::exists(PathFor(file), ec);
}

std::vector<std::string> LocalDirTraceStore::ListFiles(
    const std::string& prefix) const {
  std::vector<std::string> names;
  std::error_code ec;
  if (!fs::exists(root_dir_, ec)) return names;
  for (const auto& entry : fs::recursive_directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string key = KeyFor(entry.path().string());
    if (key.compare(0, prefix.size(), prefix) == 0) names.push_back(key);
  }
  std::sort(names.begin(), names.end());
  return names;
}

uint64_t LocalDirTraceStore::TotalBytes(const std::string& prefix) const {
  uint64_t total = 0;
  std::error_code ec;
  for (const std::string& name : ListFiles(prefix)) {
    total += fs::file_size(PathFor(name), ec);
  }
  return total;
}

uint64_t LocalDirTraceStore::RecordCount(const std::string& file) const {
  auto records = ReadAll(file);
  return records.ok() ? records->size() : 0;
}

Status LocalDirTraceStore::DeletePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& name : ListFiles(prefix)) {
    auto it = fds_.find(name);
    if (it != fds_.end()) {
      ::close(it->second);
      fds_.erase(it);
    }
    std::error_code ec;
    fs::remove(PathFor(name), ec);
    if (ec) {
      return Status::IOError("cannot remove '" + name + "': " + ec.message());
    }
  }
  return Status::OK();
}

Status LocalDirTraceStore::Flush() {
  Stopwatch clock;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, fd] : fds_) {
    if (::fsync(fd) != 0) {
      return Status::IOError("fsync of '" + name +
                             "' failed: " + std::strerror(errno));
    }
  }
  AccountFlush(clock.ElapsedSeconds());
  return Status::OK();
}

}  // namespace graft
