#ifndef GRAFT_IO_TRACE_STORE_H_
#define GRAFT_IO_TRACE_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace graft {

/// Append-only record store standing in for HDFS (see DESIGN.md
/// substitutions). Graft's instrumenter appends captured vertex/master
/// contexts as records to named trace files; the GUI and the Context
/// Reproducer read them back.
///
/// Files are identified by slash-separated keys, conventionally
///   <job_id>/superstep_<S>/worker_<W>.vtrace
/// Records are opaque byte strings; the store length-prefixes them.
///
/// All methods are thread-safe: during a superstep every worker thread
/// appends to its own file, but the interface does not rely on that.
class TraceStore {
 public:
  /// Lifetime I/O accounting, maintained by every store implementation:
  /// appends/bytes/flushes plus the wall time spent inside Append/Flush.
  /// This is the io half of the capture-overhead accounting in
  /// obs::CaptureProfile.
  struct IoStats {
    uint64_t appends = 0;
    uint64_t bytes_written = 0;  // records + framing
    uint64_t flushes = 0;
    double append_seconds = 0.0;
    double flush_seconds = 0.0;
  };

  virtual ~TraceStore() = default;

  /// Process-unique identity of this store instance. TraceBlockCache keys
  /// cached blocks by (store_uid, file) so a recycled heap address can never
  /// alias a dead store's cached data (ABA).
  uint64_t store_uid() const { return uid_; }

  /// Appends one record to `file`, creating it if needed.
  virtual Status Append(const std::string& file, std::string_view record) = 0;

  /// Reads back all records of `file` in append order.
  virtual Result<std::vector<std::string>> ReadAll(
      const std::string& file) const = 0;

  /// Random access: the record at append ordinal `index` within `file`.
  /// This is the offset unit the trace manifest records (DESIGN.md §10).
  /// The base implementation materializes the whole file; backends override
  /// with cheaper lookups (the in-memory store is O(1), the local-dir store
  /// walks frames without materializing records).
  virtual Result<std::string> ReadRecord(const std::string& file,
                                         uint64_t index) const;

  /// True if the file exists (has been appended to at least once).
  virtual bool Exists(const std::string& file) const = 0;

  /// All file names with the given prefix, sorted.
  virtual std::vector<std::string> ListFiles(
      const std::string& prefix) const = 0;

  /// Total serialized bytes under `prefix` (records + framing). This is what
  /// the paper reports as "small log files, often in the kilobytes".
  virtual uint64_t TotalBytes(const std::string& prefix) const = 0;

  /// Number of records in `file`; 0 if absent.
  virtual uint64_t RecordCount(const std::string& file) const = 0;

  /// Removes every file under `prefix`. Used between benchmark repetitions.
  virtual Status DeletePrefix(const std::string& prefix) = 0;

  /// Ensures buffered data is durable (no-op for the in-memory store).
  virtual Status Flush() = 0;

  /// Snapshot of the lifetime I/O counters (thread-safe).
  IoStats io_stats() const {
    IoStats stats;
    stats.appends = appends_.load(std::memory_order_relaxed);
    stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    stats.flushes = flushes_.load(std::memory_order_relaxed);
    stats.append_seconds = append_seconds_.load(std::memory_order_relaxed);
    stats.flush_seconds = flush_seconds_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Copies the I/O counters into `registry` as tracestore.* metrics.
  void ExportMetrics(obs::MetricsRegistry* registry) const {
    IoStats stats = io_stats();
    registry->GetCounter("tracestore.appends_total")
        ->Increment(stats.appends);
    registry->GetCounter("tracestore.bytes_written_total")
        ->Increment(stats.bytes_written);
    registry->GetCounter("tracestore.flushes_total")
        ->Increment(stats.flushes);
    registry->GetGauge("tracestore.append_seconds")
        ->Add(stats.append_seconds);
    registry->GetGauge("tracestore.flush_seconds")->Add(stats.flush_seconds);
  }

 protected:
  /// Called by implementations after each successful append/flush.
  void AccountAppend(uint64_t bytes, double seconds) {
    appends_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    obs::AtomicDoubleAdd(&append_seconds_, seconds);
  }
  void AccountFlush(double seconds) {
    flushes_.fetch_add(1, std::memory_order_relaxed);
    obs::AtomicDoubleAdd(&flush_seconds_, seconds);
  }

 private:
  static uint64_t NextStoreUid() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  const uint64_t uid_ = NextStoreUid();
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<double> append_seconds_{0.0};
  std::atomic<double> flush_seconds_{0.0};
};

/// Heap-backed store; the default for tests and benchmarks, where trace
/// durability is irrelevant but write cost should be realistic-but-cheap.
class InMemoryTraceStore : public TraceStore {
 public:
  InMemoryTraceStore() = default;

  Status Append(const std::string& file, std::string_view record) override;
  Result<std::vector<std::string>> ReadAll(
      const std::string& file) const override;
  Result<std::string> ReadRecord(const std::string& file,
                                 uint64_t index) const override;
  bool Exists(const std::string& file) const override;
  std::vector<std::string> ListFiles(const std::string& prefix) const override;
  uint64_t TotalBytes(const std::string& prefix) const override;
  uint64_t RecordCount(const std::string& file) const override;
  Status DeletePrefix(const std::string& prefix) override;
  Status Flush() override {
    AccountFlush(0.0);
    return Status::OK();
  }

 private:
  struct FileData {
    std::vector<std::string> records;
    uint64_t bytes = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, FileData> files_;
};

/// Durable store writing each trace file as a real file under `root_dir`
/// with varint length-prefixed records. This is what examples use so that a
/// user can point external tooling at the traces, mirroring HDFS trace files.
class LocalDirTraceStore : public TraceStore {
 public:
  /// Creates `root_dir` if missing.
  static Result<std::unique_ptr<LocalDirTraceStore>> Open(
      const std::string& root_dir);

  ~LocalDirTraceStore() override;

  Status Append(const std::string& file, std::string_view record) override;
  Result<std::vector<std::string>> ReadAll(
      const std::string& file) const override;
  Result<std::string> ReadRecord(const std::string& file,
                                 uint64_t index) const override;
  bool Exists(const std::string& file) const override;
  std::vector<std::string> ListFiles(const std::string& prefix) const override;
  uint64_t TotalBytes(const std::string& prefix) const override;
  uint64_t RecordCount(const std::string& file) const override;
  Status DeletePrefix(const std::string& prefix) override;
  Status Flush() override;

 private:
  explicit LocalDirTraceStore(std::string root_dir);

  std::string PathFor(const std::string& file) const;
  std::string KeyFor(const std::string& path) const;

  std::string root_dir_;
  mutable std::mutex mutex_;
  // Open append handles, one per file, kept for the store's lifetime.
  std::map<std::string, int> fds_;
};

}  // namespace graft

#endif  // GRAFT_IO_TRACE_STORE_H_
