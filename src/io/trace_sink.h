#ifndef GRAFT_IO_TRACE_SINK_H_
#define GRAFT_IO_TRACE_SINK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "io/trace_store.h"

namespace graft {

namespace obs {
class EventJournal;
}  // namespace obs

/// How capture appends reach the TraceStore (DESIGN.md §10). The sync sink
/// is the historical behavior: every Append is a store write on the calling
/// worker thread. The async (spooling) sink moves the store write off the
/// BSP critical path: workers serialize into per-thread arena buffers and
/// hand framed record batches to a bounded queue drained by one background
/// flusher thread.
struct TraceSinkOptions {
  bool async = false;
  /// Per-thread arena size that triggers a batch handoff (async only). A
  /// batch is also sealed whenever the thread switches target files. Sized
  /// so the handoff (a queue-lock round trip plus a possible flusher wake)
  /// stays rare relative to the lock-free arena copies it amortizes.
  size_t max_batch_bytes = 256 * 1024;
  /// Bounded-queue capacity in batches; producers block (backpressure) when
  /// the flusher falls this far behind (async only).
  size_t queue_capacity = 64;
  /// Optional telemetry journal (DESIGN.md §11): the spooling sink emits one
  /// "capture.flush" span per batch store-write so flushes appear on the
  /// trace timeline. Null (the default) emits nothing. RunJob wires this
  /// from JobSpec::telemetry.
  obs::EventJournal* journal = nullptr;
};

/// Per-job I/O accounting of one sink. Unlike TraceStore::IoStats these are
/// job-scoped and rewindable: the CaptureManager snapshots them at every
/// checkpoint boundary and restores them on recovery, so a recovered run
/// reports each append exactly once (the retry double-count fix).
struct TraceSinkStats {
  uint64_t appends = 0;         // records durably appended to the store
  uint64_t bytes = 0;           // record payload bytes appended
  uint64_t flushes = 0;         // store Flush() calls issued by the sink
  uint64_t batches = 0;         // batch handoffs (async only)
  uint64_t backpressure_waits = 0;  // producer blocks on a full queue
  uint64_t max_queue_depth = 0;     // high-water mark of queued batches
  /// Producer-side capture I/O time. Sync sink: every store write, timed per
  /// record (each one blocks the worker). Spooling sink: batch seal/handoff
  /// time including any backpressure block, timed per batch — the per-record
  /// arena copy is far below clock granularity, so timing each copy would
  /// measure the clock, not the copy.
  double append_seconds = 0.0;
  double flush_seconds = 0.0;  // background store-write time (async only)

  friend bool operator==(const TraceSinkStats&,
                         const TraceSinkStats&) = default;
};

/// Write-side boundary between the capture layer and the TraceStore. All
/// implementations preserve per-file append order (each trace file has a
/// single producer thread), so the final trace bytes are identical across
/// sink implementations.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Hands one record for `file` to the sink. The sync sink returns the
  /// store's status; the async sink returns OK on enqueue, or the first
  /// deferred flush error once one is latched (the record is then dropped —
  /// the run is aborting and recovery will prune + re-capture).
  virtual Status Append(const std::string& file, std::string_view record) = 0;

  /// Blocks until everything accepted by Append is durably in the store and
  /// returns the first flush error, if any. Called at superstep barriers and
  /// before checkpoint-coordinated counter snapshots; must only run while no
  /// Append calls are in flight.
  virtual Status Quiesce() = 0;

  /// Drops buffered-but-unflushed records and clears any latched error.
  /// Called on crash recovery, right before the trace prune: the dropped
  /// records belong to supersteps that are about to be re-executed.
  virtual void DiscardPending() {}

  virtual bool async() const { return false; }

  /// Point-in-time copy of the per-job I/O counters. Only consistent while
  /// quiesced (no in-flight appends or background flushes).
  virtual TraceSinkStats stats() const = 0;
  /// Rewinds the counters to a snapshot taken at a checkpoint boundary.
  virtual void RestoreStats(const TraceSinkStats& stats) = 0;
};

/// Synchronous sink: Append == TraceStore::Append on the calling thread.
class SyncTraceSink final : public TraceSink {
 public:
  explicit SyncTraceSink(TraceStore* store);

  Status Append(const std::string& file, std::string_view record) override;
  Status Quiesce() override { return Status::OK(); }
  TraceSinkStats stats() const override;
  void RestoreStats(const TraceSinkStats& stats) override;

 private:
  TraceStore* store_;
  mutable std::mutex mutex_;
  TraceSinkStats stats_;
};

/// Asynchronous spooling sink: producers append into per-thread arena
/// buffers; sealed batches flow through a bounded FIFO queue to a single
/// background flusher thread that performs the store writes. Per-file record
/// order is preserved (one producer thread per trace file, FIFO queue, one
/// consumer), so trace files are byte-identical to sync mode. A store
/// failure on the flusher thread is latched and surfaced by the next
/// Append/Quiesce, preserving FaultInjectingTraceStore's retryable-abort
/// semantics at superstep granularity.
class SpoolingTraceSink final : public TraceSink {
 public:
  SpoolingTraceSink(TraceStore* store, const TraceSinkOptions& options);
  ~SpoolingTraceSink() override;

  Status Append(const std::string& file, std::string_view record) override;
  Status Quiesce() override;
  void DiscardPending() override;
  bool async() const override { return true; }
  TraceSinkStats stats() const override;
  void RestoreStats(const TraceSinkStats& stats) override;

 private:
  /// One sealed arena of framed records, all for the same file.
  struct Batch {
    std::string file;
    std::string arena;             // concatenated record payloads
    std::vector<uint32_t> sizes;   // record boundaries within the arena
  };
  /// Per-producer-thread buffer; `mutex` is uncontended in steady state (the
  /// owner thread appends, Quiesce/DiscardPending run only at barriers).
  struct ThreadSlot {
    std::mutex mutex;
    Batch open;
  };

  ThreadSlot* SlotForThisThread();
  Status SealAndEnqueue(Batch&& batch);
  void SealAllSlotsLocked();  // requires slots_mutex_ held by caller
  void FlusherLoop();

  TraceStore* store_;
  TraceSinkOptions options_;
  const uint64_t sink_id_;

  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;

  std::mutex queue_mutex_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_drained_;
  std::deque<Batch> queue_;
  bool flusher_busy_ = false;  // a popped batch is being written
  bool stop_ = false;
  Status error_ = Status::OK();     // first flush failure, latched
  std::atomic<bool> has_error_{false};  // lock-free fast-path mirror of error_

  mutable std::mutex stats_mutex_;
  TraceSinkStats stats_;

  std::thread flusher_;
};

/// Builds the sink selected by `options` over `store`.
std::unique_ptr<TraceSink> MakeTraceSink(TraceStore* store,
                                         const TraceSinkOptions& options);

}  // namespace graft

#endif  // GRAFT_IO_TRACE_SINK_H_
