#ifndef GRAFT_IO_TRACE_BLOCK_CACHE_H_
#define GRAFT_IO_TRACE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "io/trace_store.h"
#include "obs/metrics.h"

namespace graft {


struct TraceBlockCacheOptions {
  /// Total byte budget across all shards. Decoded record blocks and
  /// type-erased entries (manifests, sessions) count their payload bytes.
  size_t byte_budget = 64ull << 20;
  /// Power-of-two shard count; each shard owns budget/shards bytes and its
  /// own mutex + LRU list, so concurrent readers on different files don't
  /// serialize on one lock.
  int shards = 8;
};

/// Process-wide sharded LRU over decoded trace data (DESIGN.md §13): the
/// read-side counterpart of the capture pipeline. Concurrent DebugSession
/// readers — the debug service's handler threads — share one cache so a hot
/// job's record blocks and manifest are decoded once and every further point
/// lookup is an in-memory index probe instead of a store rescan.
///
/// Two entry planes share the budget and the LRU discipline:
///  - file blocks: the full record vector of one trace file
///    (`GetFileBlock`), the unit the manifest's record ordinals index into;
///  - type-erased entries (`GetOrLoad`): decoded manifests and opened
///    DebugSession objects, cached by the debug layer without this layer
///    depending on it.
///
/// Keys carry the owning store's `store_uid()`, so a store that dies and a
/// new one reusing its address can never read each other's blocks. Entries
/// are `shared_ptr<const ...>`: eviction never invalidates a block a reader
/// is still holding.
///
/// Writers (RunJob) call `InvalidatePrefix(store, "<job_id>/")` before
/// re-running a job id, mirroring the stale-manifest delete.
class TraceBlockCache {
 public:
  using Block = std::vector<std::string>;
  using BlockPtr = std::shared_ptr<const Block>;
  using AnyPtr = std::shared_ptr<const void>;
  /// Loader for type-erased entries: returns the value and its byte charge.
  using AnyLoader = std::function<Result<std::pair<AnyPtr, size_t>>()>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    uint64_t bytes = 0;
    uint64_t entries = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  explicit TraceBlockCache(TraceBlockCacheOptions options = {});
  TraceBlockCache(const TraceBlockCache&) = delete;
  TraceBlockCache& operator=(const TraceBlockCache&) = delete;

  /// The process-wide instance the debug service and RunJob share.
  static TraceBlockCache& Global();

  /// All records of `file`, decoded once and shared. Misses call
  /// `store.ReadAll` and insert; a concurrent miss on the same key may load
  /// twice but only one result is kept.
  Result<BlockPtr> GetFileBlock(const TraceStore& store,
                                const std::string& file);

  /// One record by append ordinal, served from the file's cached block.
  /// Warm calls do zero store reads.
  Result<std::string> ReadRecord(const TraceStore& store,
                                 const std::string& file, uint64_t index);

  /// Type-erased get-or-load keyed by (store uid, key). The caller supplies
  /// the decode; `key` should be namespaced ("manifest/<job>", ...). The
  /// pointed-to value must be immutable.
  Result<AnyPtr> GetOrLoad(uint64_t store_uid, const std::string& key,
                           const AnyLoader& loader);

  /// Drops every entry of `store` whose key starts with `prefix` (a job's
  /// trace directory). Called before a job id is re-run.
  void InvalidatePrefix(const TraceStore& store, const std::string& prefix);

  /// Drops everything (tests, between bench repetitions).
  void Clear();

  Stats stats() const;
  size_t byte_budget() const { return options_.byte_budget; }

  /// Publishes the counters as tracecache.* gauges/counters into `registry`.
  /// Values are Set(), so repeated scrapes are idempotent.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct Entry {
    std::string key;  // user key (uid is the map key's partner)
    uint64_t store_uid = 0;
    AnyPtr value;
    size_t bytes = 0;
    std::list<Entry*>::iterator lru_it;
  };

  struct alignas(64) Shard {
    std::mutex mutex;
    /// "uid/key" -> entry. The entry owns its LRU node.
    std::unordered_map<std::string, std::unique_ptr<Entry>> map;
    /// Front = most recently used.
    std::list<Entry*> lru;
    size_t bytes = 0;
  };

  static std::string MapKey(uint64_t store_uid, const std::string& key);
  Shard& ShardFor(const std::string& map_key);
  /// Inserts under the shard lock, evicting LRU entries past the shard
  /// budget. Keeps an existing entry (first loader wins) and returns it.
  AnyPtr InsertLocked(Shard& shard, const std::string& map_key,
                      uint64_t store_uid, const std::string& key, AnyPtr value,
                      size_t bytes);

  TraceBlockCacheOptions options_;
  size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};


}  // namespace graft

#endif  // GRAFT_IO_TRACE_BLOCK_CACHE_H_
