#include "io/trace_block_cache.h"

#include <utility>

#include "common/string_util.h"

namespace graft {


namespace {

size_t BlockBytes(const TraceBlockCache::Block& block) {
  size_t bytes = sizeof(block);
  for (const std::string& record : block) {
    bytes += record.size() + sizeof(std::string);
  }
  return bytes;
}

}  // namespace

TraceBlockCache::TraceBlockCache(TraceBlockCacheOptions options)
    : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  shard_budget_ = options_.byte_budget / static_cast<size_t>(options_.shards);
  if (shard_budget_ == 0) shard_budget_ = 1;
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TraceBlockCache& TraceBlockCache::Global() {
  static TraceBlockCache* cache = new TraceBlockCache();
  return *cache;
}

std::string TraceBlockCache::MapKey(uint64_t store_uid,
                                    const std::string& key) {
  return StrFormat("%llu/", static_cast<unsigned long long>(store_uid)) + key;
}

TraceBlockCache::Shard& TraceBlockCache::ShardFor(const std::string& map_key) {
  const size_t h = std::hash<std::string>{}(map_key);
  return *shards_[h % shards_.size()];
}

TraceBlockCache::AnyPtr TraceBlockCache::InsertLocked(
    Shard& shard, const std::string& map_key, uint64_t store_uid,
    const std::string& key, AnyPtr value, size_t bytes) {
  auto it = shard.map.find(map_key);
  if (it != shard.map.end()) {
    // A concurrent loader won the race; keep its entry (LRU-bump it).
    Entry* entry = it->second.get();
    shard.lru.erase(entry->lru_it);
    shard.lru.push_front(entry);
    entry->lru_it = shard.lru.begin();
    return entry->value;
  }
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->store_uid = store_uid;
  entry->value = std::move(value);
  entry->bytes = bytes;
  shard.lru.push_front(entry.get());
  entry->lru_it = shard.lru.begin();
  shard.bytes += bytes;
  AnyPtr result = entry->value;
  shard.map.emplace(map_key, std::move(entry));
  // Evict past the shard budget, oldest first. The just-inserted entry is
  // evicted last: an oversized block is still served to this caller (the
  // returned shared_ptr keeps it alive) but never stays resident, so one
  // huge block cannot pin the shard over budget.
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    Entry* victim = shard.lru.back();
    shard.lru.pop_back();
    shard.bytes -= victim->bytes;
    shard.map.erase(MapKey(victim->store_uid, victim->key));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<TraceBlockCache::AnyPtr> TraceBlockCache::GetOrLoad(
    uint64_t store_uid, const std::string& key, const AnyLoader& loader) {
  const std::string map_key = MapKey(store_uid, key);
  Shard& shard = ShardFor(map_key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(map_key);
    if (it != shard.map.end()) {
      Entry* entry = it->second.get();
      shard.lru.erase(entry->lru_it);
      shard.lru.push_front(entry);
      entry->lru_it = shard.lru.begin();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return entry->value;
    }
  }
  // Load outside the lock: a slow decode must not serialize the shard. Two
  // racing misses both load; InsertLocked keeps the first.
  misses_.fetch_add(1, std::memory_order_relaxed);
  GRAFT_ASSIGN_OR_RETURN(auto loaded, loader());
  // A null value means "nothing to cache" (e.g. a manifest that vanished
  // mid-load): return it without inserting so absence is never sticky.
  if (loaded.first == nullptr) return AnyPtr();
  std::lock_guard<std::mutex> lock(shard.mutex);
  return InsertLocked(shard, map_key, store_uid, key, std::move(loaded.first),
                      loaded.second);
}

Result<TraceBlockCache::BlockPtr> TraceBlockCache::GetFileBlock(
    const TraceStore& store, const std::string& file) {
  GRAFT_ASSIGN_OR_RETURN(
      AnyPtr any,
      GetOrLoad(store.store_uid(), file,
                [&]() -> Result<std::pair<AnyPtr, size_t>> {
                  GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                                         store.ReadAll(file));
                  auto block =
                      std::make_shared<const Block>(std::move(records));
                  const size_t bytes = BlockBytes(*block);
                  return std::make_pair(AnyPtr(block), bytes);
                }));
  return std::static_pointer_cast<const Block>(any);
}

Result<std::string> TraceBlockCache::ReadRecord(const TraceStore& store,
                                                const std::string& file,
                                                uint64_t index) {
  GRAFT_ASSIGN_OR_RETURN(BlockPtr block, GetFileBlock(store, file));
  if (index >= block->size()) {
    return Status::OutOfRange(
        StrFormat("record %llu out of range in '%s' (%zu records)",
                  static_cast<unsigned long long>(index), file.c_str(),
                  block->size()));
  }
  return (*block)[index];
}

void TraceBlockCache::InvalidatePrefix(const TraceStore& store,
                                       const std::string& prefix) {
  const uint64_t uid = store.store_uid();
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      Entry* entry = it->second.get();
      const bool match =
          entry->store_uid == uid &&
          entry->key.compare(0, prefix.size(), prefix) == 0;
      if (!match) {
        ++it;
        continue;
      }
      shard.lru.erase(entry->lru_it);
      shard.bytes -= entry->bytes;
      it = shard.map.erase(it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void TraceBlockCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    const uint64_t dropped = shard.map.size();
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

TraceBlockCache::Stats TraceBlockCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.bytes += shard.bytes;
    stats.entries += shard.map.size();
  }
  return stats;
}

void TraceBlockCache::ExportMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const Stats s = stats();
  // Gauges with Set(): scrape-idempotent snapshots of monotonic counters
  // (a Counter's Increment would double-count across scrapes).
  registry->GetGauge("tracecache.hits_total")
      ->Set(static_cast<double>(s.hits));
  registry->GetGauge("tracecache.misses_total")
      ->Set(static_cast<double>(s.misses));
  registry->GetGauge("tracecache.evictions_total")
      ->Set(static_cast<double>(s.evictions));
  registry->GetGauge("tracecache.invalidations_total")
      ->Set(static_cast<double>(s.invalidations));
  registry->GetGauge("tracecache.bytes")->Set(static_cast<double>(s.bytes));
  registry->GetGauge("tracecache.entries")
      ->Set(static_cast<double>(s.entries));
  registry->GetGauge("tracecache.hit_rate")->Set(s.HitRate());
  registry->SetHelp("tracecache.hit_rate",
                    "Fraction of trace block cache lookups served without a "
                    "store read.");
}


}  // namespace graft
