#ifndef GRAFT_ANALYSIS_SANITIZER_H_
#define GRAFT_ANALYSIS_SANITIZER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/epoch.h"
#include "analysis/finding.h"
#include "analysis/finding_log.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "debug/reproducer.h"
#include "debug/vertex_trace.h"
#include "io/trace_store.h"
#include "pregel/computation.h"
#include "pregel/compute_context.h"
#include "pregel/master.h"
#include "pregel/phase.h"
#include "pregel/vertex.h"

namespace graft {
namespace analysis {

/// Which contract checks run, and how hard they bite. Default-constructed
/// options leave the sanitizer fully disabled: RunJob then never wraps the
/// computation, never installs watchers, and never allocates a phase clock —
/// the release hot path is byte-for-byte the unchecked one (the
/// bench_engine_baseline sanitizer-off case guards this).
struct SanitizerOptions {
  bool enabled = false;
  /// Escalate every finding to a job abort (Status::Aborted, never retried)
  /// instead of recording it and letting the run finish.
  bool fail_on_violation = false;

  // Per-rule toggles (only consulted when `enabled`).
  bool check_send_after_halt = true;      // (a)
  bool check_stale_reads = true;          // (b) — Stamped<T> epoch checks
  bool check_aggregator_phase = true;     // (c)
  bool check_mutation_after_halt = true;  // (d)
  bool check_commutativity = true;        // (e) combiner self-test
  /// (e) re-execution probe: 0 = off, 1 = every vertex every superstep,
  /// N = a deterministic 1-in-N sample keyed on (seed, superstep, vertex).
  uint32_t determinism_sample_rate = 0;
  /// Keys the probe sample (not the probed program's randomness — that comes
  /// from the engine's own deterministic streams).
  uint64_t seed = 0x5eed5a71ull;
};

/// The BspSanitizer: a checked execution mode that wraps the user's
/// Computation/MasterCompute in contract-enforcing decorators, layered
/// exactly like debug::InstrumentedComputation (DESIGN.md §9). One instance
/// per job run, shared by all worker threads; owns the FindingLog.
///
/// Wrap order in RunJob is Instrument(Sanitize(user)): the user program sees
/// SanitizedContext → capture Interceptor → engine context, so captures
/// record what the user actually did and sanitizer checks see the user's
/// calls first-hand.
template <pregel::JobTraits Traits>
class BspSanitizer {
 public:
  using Message = typename Traits::Message;
  using VertexValue = typename Traits::VertexValue;
  using EdgeT = pregel::Edge<typename Traits::EdgeValue>;
  using Combiner = std::function<Message(const Message&, const Message&)>;

  /// `store` may be null (findings stay in memory only); `clock` may be null
  /// (phase-dependent checks are skipped); `user_factory` is the *unwrapped*
  /// user computation, used to build fresh instances for determinism-probe
  /// replays; `combiner` is a copy of the engine's combiner for the
  /// commutativity self-test (may be null).
  BspSanitizer(const SanitizerOptions& options, TraceStore* store,
               std::string job_id, pregel::PhaseClock* clock,
               pregel::ComputationFactory<Traits> user_factory,
               Combiner combiner)
      : options_(options),
        log_(store, std::move(job_id), options.fail_on_violation),
        clock_(clock),
        user_factory_(std::move(user_factory)),
        combiner_(std::move(combiner)) {}

  BspSanitizer(const BspSanitizer&) = delete;
  BspSanitizer& operator=(const BspSanitizer&) = delete;

  const SanitizerOptions& options() const { return options_; }
  FindingLog& log() { return log_; }
  const FindingLog& log() const { return log_; }
  pregel::PhaseClock* clock() const { return clock_; }

  /// Wraps the user factory so every worker's Computation runs checked.
  pregel::ComputationFactory<Traits> WrapComputation() {
    return [this] {
      return std::make_unique<SanitizedComputation>(user_factory_(), this);
    };
  }

  /// Wraps the master factory (null-safe: no master stays no master).
  pregel::MasterFactory WrapMaster(pregel::MasterFactory factory) {
    if (factory == nullptr) return nullptr;
    return [this, factory = std::move(factory)] {
      return std::make_unique<SanitizedMaster>(factory(), this);
    };
  }

  /// 1-in-N deterministic probe sample (stable across attempts, so recovery
  /// re-probes the same vertices it pruned).
  bool ShouldProbe(int64_t superstep, VertexId vertex) const {
    const uint32_t rate = options_.determinism_sample_rate;
    if (rate == 0 || user_factory_ == nullptr) return false;
    if (rate == 1) return true;
    return Mix64(options_.seed ^
                 (static_cast<uint64_t>(superstep) * 0x9e3779b97f4a7c15ull) ^
                 static_cast<uint64_t>(vertex)) %
               rate ==
           0;
  }

 private:
  /// First update seen for a kOverwrite aggregator this superstep; a second
  /// distinct value from a different vertex makes the merged result depend
  /// on fold order.
  struct OverwriteState {
    int64_t superstep = -1;
    VertexId vertex = -1;
    pregel::AggValue value;
  };

  void RecordAggregatorSpec(const std::string& name,
                            const pregel::AggregatorSpec& spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    aggregator_specs_[name] = spec;
  }

  bool IsOverwriteAggregator(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = aggregator_specs_.find(name);
    return it != aggregator_specs_.end() &&
           it->second.op == pregel::AggregatorOp::kOverwrite;
  }

  void NoteOverwriteAggregate(const std::string& name, int64_t superstep,
                              VertexId vertex, int worker,
                              const pregel::AggValue& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    OverwriteState& state = overwrite_state_[name];
    if (state.superstep == superstep && state.vertex != vertex &&
        !(state.value == value)) {
      log_.Record(AnalysisFinding{
          .kind = FindingKind::kOrderDependentAggregation,
          .superstep = superstep,
          .vertex = vertex,
          .worker = static_cast<int32_t>(worker),
          .detail = StrFormat(
              "kOverwrite aggregator \"%s\" written distinct values by "
              "vertices %lld and %lld in the same superstep — merged result "
              "depends on worker fold order",
              name.c_str(), static_cast<long long>(state.vertex),
              static_cast<long long>(vertex))});
      return;
    }
    state = OverwriteState{superstep, vertex, value};
  }

  /// Opportunistic commutativity self-test: combine each sampled message
  /// with a few previously seen ones in both orders. Bounded (samples and
  /// total tests) so a million sends cost a handful of combiner calls.
  void TestCombinerSample(const Message& message, int64_t superstep,
                          int worker) {
    static constexpr size_t kMaxSamples = 8;
    static constexpr uint64_t kMaxTests = 64;
    std::lock_guard<std::mutex> lock(mutex_);
    if (combiner_tests_done_ >= kMaxTests || combiner_flagged_) return;
    for (const Message& other : combiner_samples_) {
      ++combiner_tests_done_;
      const Message ab = combiner_(other, message);
      const Message ba = combiner_(message, other);
      if (!(ab == ba)) {
        combiner_flagged_ = true;
        log_.Record(AnalysisFinding{
            .kind = FindingKind::kNonCommutativeCombiner,
            .superstep = superstep,
            .vertex = -1,
            .worker = static_cast<int32_t>(worker),
            .detail = StrFormat(
                "combine(%s, %s) = %s but combine(%s, %s) = %s — sender-side "
                "combining makes delivery order observable",
                other.ToString().c_str(), message.ToString().c_str(),
                ab.ToString().c_str(), message.ToString().c_str(),
                other.ToString().c_str(), ba.ToString().c_str())});
        return;
      }
      if (combiner_tests_done_ >= kMaxTests) break;
    }
    if (combiner_samples_.size() < kMaxSamples) {
      combiner_samples_.push_back(message);
    }
  }

  std::unique_ptr<pregel::Computation<Traits>> MakeUserComputation() {
    return user_factory_();
  }

  /// The checked vertex program. One per worker thread (factory-produced),
  /// so the per-call fields below are thread-confined; it doubles as the
  /// VertexWatcher installed on the thread for the duration of each checked
  /// Compute() call.
  class SanitizedComputation final : public pregel::Computation<Traits>,
                                     public pregel::VertexWatcher {
    class SanitizedContext;

   public:
    SanitizedComputation(std::unique_ptr<pregel::Computation<Traits>> inner,
                         BspSanitizer* sanitizer)
        : inner_(std::move(inner)),
          sanitizer_(sanitizer),
          reporter_([this](AnalysisFinding finding) {
            finding.worker = worker_;
            sanitizer_->log_.Record(std::move(finding));
          }) {}

    void Compute(pregel::ComputeContext<Traits>& ctx,
                 pregel::Vertex<Traits>& vertex,
                 const std::vector<Message>& messages) override {
      const SanitizerOptions& opts = sanitizer_->options_;
      const int64_t superstep = ctx.superstep();
      worker_ = ctx.worker_index();
      superstep_ = superstep;
      vertex_ = &vertex;
      mutation_reported_ = false;

      const bool probe = sanitizer_->ShouldProbe(superstep, vertex.id());

      // Entry snapshot, only when this call will be replayed.
      VertexValue value_before{};
      uint64_t rng_state = 0;
      std::vector<EdgeT> edges_before;
      if (probe) {
        value_before = vertex.value();
        rng_state = ctx.rng().state();
        edges_before = vertex.edges();
      }

      SanitizedContext sctx(&ctx, this, &vertex, /*record_outcome=*/probe);
      {
        // Install the mutation watcher and the stale-read epoch for the
        // duration of the user call; the guard restores both on normal
        // return and on unwind (the outer instrumenter catches user
        // exceptions — the thread must be clean by then).
        ThreadHookGuard guard(opts.check_mutation_after_halt ? this : nullptr,
                              opts.check_stale_reads ? &reporter_ : nullptr,
                              AccessEpoch{superstep, vertex.id(), true});
        inner_->Compute(sctx, vertex, messages);
      }
      vertex_ = nullptr;

      // Reached only when the user call returned normally: a throwing
      // Compute() is not probed (the capture layer owns exception evidence).
      if (probe) {
        RunProbe(ctx, vertex, messages, std::move(value_before), rng_state,
                 std::move(edges_before), sctx);
      }
    }

    // VertexWatcher hooks — fire synchronously inside vertex mutators.
    void OnVoteToHalt(VertexId id) override { (void)id; }
    void OnActivate(VertexId id) override {
      (void)id;
      mutation_reported_ = false;
    }
    void OnValueMutation(VertexId id) override { ReportMutation(id, "value"); }
    void OnEdgeMutation(VertexId id) override { ReportMutation(id, "edges"); }

   private:
    friend class BspSanitizer;

    void ReportMutation(VertexId id, const char* what) {
      // The engine activates every vertex before Compute(), so halted()
      // during the call means the user voted to halt and kept mutating
      // without Activate() — rule (d). One finding per Compute() call.
      if (vertex_ == nullptr || !vertex_->halted() || mutation_reported_) {
        return;
      }
      mutation_reported_ = true;
      sanitizer_->log_.Record(AnalysisFinding{
          .kind = FindingKind::kMutationAfterHalt,
          .superstep = superstep_,
          .vertex = id,
          .worker = static_cast<int32_t>(worker_),
          .detail = StrFormat(
              "%s mutated after VoteToHalt() without reactivation", what)});
    }

    /// Re-executes this vertex against the captured entry context with a
    /// fresh user Computation instance (debug::ReplayVertex machinery) and
    /// diffs every recorded effect. Any divergence means Compute() consumed
    /// something outside the BSP-visible context.
    void RunProbe(pregel::ComputeContext<Traits>& ctx,
                  pregel::Vertex<Traits>& vertex,
                  const std::vector<Message>& messages,
                  VertexValue value_before, uint64_t rng_state,
                  std::vector<EdgeT> edges_before, SanitizedContext& sctx) {
      Stopwatch probe_clock;
      debug::VertexTrace<Traits> trace;
      trace.superstep = ctx.superstep();
      trace.id = vertex.id();
      trace.value_before = std::move(value_before);
      trace.rng_state = rng_state;
      trace.edges = std::move(edges_before);
      trace.incoming = messages;
      trace.aggregators = ctx.VisibleAggregators();
      trace.total_vertices = ctx.total_num_vertices();
      trace.total_edges = ctx.total_num_edges();
      trace.value_after = vertex.value();
      trace.halted_after = vertex.halted();
      trace.outgoing = sctx.TakeOutgoing();
      trace.aggregations = sctx.TakeAggregations();
      // edges_snapshot_post stays false: the snapshot is from call entry, so
      // CheckReplayFidelity diffs messages and aggregations too.

      std::unique_ptr<pregel::Computation<Traits>> fresh =
          sanitizer_->MakeUserComputation();
      debug::ReplayFidelity fidelity =
          debug::CheckReplayFidelity(trace, *fresh);
      const bool mismatch = !fidelity.Faithful();
      if (mismatch) {
        sanitizer_->log_.Record(AnalysisFinding{
            .kind = FindingKind::kNondeterminism,
            .superstep = trace.superstep,
            .vertex = trace.id,
            .worker = static_cast<int32_t>(worker_),
            .detail =
                "re-execution with identical inputs diverged: " +
                fidelity.mismatch_detail});
      }
      sanitizer_->log_.AccountProbe(mismatch, probe_clock.ElapsedSeconds());
    }

    /// Context decorator the user program actually talks to.
    class SanitizedContext final : public pregel::ComputeContext<Traits> {
     public:
      using EdgeValue = typename Traits::EdgeValue;

      SanitizedContext(pregel::ComputeContext<Traits>* inner,
                       SanitizedComputation* owner,
                       const pregel::Vertex<Traits>* vertex,
                       bool record_outcome)
          : inner_(inner),
            owner_(owner),
            vertex_(vertex),
            record_outcome_(record_outcome) {}

      std::vector<std::pair<VertexId, Message>>&& TakeOutgoing() {
        return std::move(outgoing_);
      }
      std::vector<std::pair<std::string, pregel::AggValue>>&&
      TakeAggregations() {
        return std::move(aggregations_);
      }

      int64_t superstep() const override { return inner_->superstep(); }
      int64_t total_num_vertices() const override {
        return inner_->total_num_vertices();
      }
      int64_t total_num_edges() const override {
        return inner_->total_num_edges();
      }

      void SendMessage(VertexId target, const Message& message) override {
        BspSanitizer* sanitizer = owner_->sanitizer_;
        if (sanitizer->options_.check_send_after_halt && vertex_->halted()) {
          sanitizer->log_.Record(AnalysisFinding{
              .kind = FindingKind::kSendAfterHalt,
              .superstep = inner_->superstep(),
              .vertex = vertex_->id(),
              .worker = static_cast<int32_t>(owner_->worker_),
              .detail = StrFormat(
                  "SendMessage to vertex %lld after VoteToHalt() in the same "
                  "Compute() call",
                  static_cast<long long>(target))});
        }
        if (sanitizer->options_.check_commutativity &&
            sanitizer->combiner_ != nullptr) {
          sanitizer->TestCombinerSample(message, inner_->superstep(),
                                        owner_->worker_);
        }
        if (record_outcome_) outgoing_.emplace_back(target, message);
        inner_->SendMessage(target, message);
      }

      pregel::AggValue GetAggregated(const std::string& name) const override {
        return inner_->GetAggregated(name);
      }

      void Aggregate(const std::string& name,
                     const pregel::AggValue& update) override {
        BspSanitizer* sanitizer = owner_->sanitizer_;
        const int64_t superstep = inner_->superstep();
        if (sanitizer->options_.check_aggregator_phase &&
            sanitizer->clock_ != nullptr) {
          const auto [phase, clock_superstep] = sanitizer->clock_->Read();
          if (phase != pregel::EnginePhase::kVertexCompute) {
            sanitizer->log_.Record(AnalysisFinding{
                .kind = FindingKind::kAggregatorPhase,
                .superstep = clock_superstep,
                .vertex = vertex_->id(),
                .worker = static_cast<int32_t>(owner_->worker_),
                .detail = StrFormat(
                    "Aggregate(\"%s\") outside the vertex compute phase "
                    "(engine is in %s)",
                    name.c_str(), pregel::EnginePhaseName(phase))});
          }
        }
        if (sanitizer->IsOverwriteAggregator(name)) {
          sanitizer->NoteOverwriteAggregate(name, superstep, vertex_->id(),
                                            owner_->worker_, update);
        }
        if (record_outcome_) aggregations_.emplace_back(name, update);
        inner_->Aggregate(name, update);
      }

      const std::map<std::string, pregel::AggValue>& VisibleAggregators()
          const override {
        return inner_->VisibleAggregators();
      }
      Rng& rng() override { return inner_->rng(); }
      void RemoveVertexRequest(VertexId id) override {
        inner_->RemoveVertexRequest(id);
      }
      void AddEdgeRequest(VertexId source, VertexId target,
                          const EdgeValue& value) override {
        inner_->AddEdgeRequest(source, target, value);
      }
      void RemoveEdgeRequest(VertexId source, VertexId target) override {
        inner_->RemoveEdgeRequest(source, target);
      }
      int worker_index() const override { return inner_->worker_index(); }

     private:
      pregel::ComputeContext<Traits>* inner_;
      SanitizedComputation* owner_;
      const pregel::Vertex<Traits>* vertex_;
      bool record_outcome_;

      std::vector<std::pair<VertexId, Message>> outgoing_;
      std::vector<std::pair<std::string, pregel::AggValue>> aggregations_;
    };

    /// Installs/uninstalls the thread-local hooks, exception-safe.
    class ThreadHookGuard {
     public:
      ThreadHookGuard(pregel::VertexWatcher* watcher, EpochReporter* reporter,
                      AccessEpoch epoch)
          : watcher_installed_(watcher != nullptr),
            reporter_installed_(reporter != nullptr) {
        if (watcher_installed_) {
          prev_watcher_ = pregel::VertexWatcher::Install(watcher);
        }
        if (reporter_installed_) {
          prev_reporter_ = EpochReporter::Install(reporter, epoch);
        }
      }
      ~ThreadHookGuard() {
        if (reporter_installed_) {
          EpochReporter::Install(prev_reporter_, AccessEpoch{});
        }
        if (watcher_installed_) {
          pregel::VertexWatcher::Install(prev_watcher_);
        }
      }
      ThreadHookGuard(const ThreadHookGuard&) = delete;
      ThreadHookGuard& operator=(const ThreadHookGuard&) = delete;

     private:
      bool watcher_installed_;
      bool reporter_installed_;
      pregel::VertexWatcher* prev_watcher_ = nullptr;
      EpochReporter* prev_reporter_ = nullptr;
    };

    std::unique_ptr<pregel::Computation<Traits>> inner_;
    BspSanitizer* sanitizer_;
    EpochReporter reporter_;

    // Per-Compute()-call state (thread-confined).
    int worker_ = -1;
    int64_t superstep_ = -1;
    const pregel::Vertex<Traits>* vertex_ = nullptr;
    bool mutation_reported_ = false;
  };

  /// Checked master context: records aggregator registrations for the
  /// kOverwrite order check and enforces the SetAggregated barrier rules.
  class SanitizedMasterContext final : public pregel::MasterContext {
   public:
    SanitizedMasterContext(pregel::MasterContext* inner,
                           BspSanitizer* sanitizer, bool in_initialize)
        : inner_(inner), sanitizer_(sanitizer), in_initialize_(in_initialize) {}

    int64_t superstep() const override { return inner_->superstep(); }
    int64_t total_num_vertices() const override {
      return inner_->total_num_vertices();
    }
    int64_t total_num_edges() const override {
      return inner_->total_num_edges();
    }

    Status RegisterAggregator(const std::string& name,
                              const pregel::AggregatorSpec& spec) override {
      sanitizer_->RecordAggregatorSpec(name, spec);
      return inner_->RegisterAggregator(name, spec);
    }

    pregel::AggValue GetAggregated(const std::string& name) const override {
      return inner_->GetAggregated(name);
    }

    Status SetAggregated(const std::string& name,
                         const pregel::AggValue& value) override {
      if (sanitizer_->options_.check_aggregator_phase) {
        if (in_initialize_) {
          // Initialize() runs before superstep 0, whose aggregator reset
          // discards any value set here — the classic "why is my phase
          // aggregator still at its initial value" master bug (§3.4).
          sanitizer_->log_.Record(AnalysisFinding{
              .kind = FindingKind::kAggregatorPhase,
              .superstep = -1,
              .vertex = -1,
              .worker = -1,
              .detail = StrFormat(
                  "SetAggregated(\"%s\") during Initialize() — the value is "
                  "discarded by the superstep-0 aggregator reset; set it "
                  "from Compute() or via the spec's initial value",
                  name.c_str())});
        } else if (sanitizer_->clock_ != nullptr &&
                   sanitizer_->clock_->phase() !=
                       pregel::EnginePhase::kMasterCompute) {
          sanitizer_->log_.Record(AnalysisFinding{
              .kind = FindingKind::kAggregatorPhase,
              .superstep = sanitizer_->clock_->superstep(),
              .vertex = -1,
              .worker = -1,
              .detail = StrFormat(
                  "master SetAggregated(\"%s\") outside master.compute() "
                  "(engine is in %s)",
                  name.c_str(),
                  pregel::EnginePhaseName(sanitizer_->clock_->phase()))});
        }
      }
      return inner_->SetAggregated(name, value);
    }

    const std::map<std::string, pregel::AggValue>& VisibleAggregators()
        const override {
      return inner_->VisibleAggregators();
    }
    void HaltComputation() override { inner_->HaltComputation(); }
    bool IsHalted() const override { return inner_->IsHalted(); }
    Rng& rng() override { return inner_->rng(); }

   private:
    pregel::MasterContext* inner_;
    BspSanitizer* sanitizer_;
    bool in_initialize_;
  };

  class SanitizedMaster final : public pregel::MasterCompute {
   public:
    SanitizedMaster(std::unique_ptr<pregel::MasterCompute> inner,
                    BspSanitizer* sanitizer)
        : inner_(std::move(inner)), sanitizer_(sanitizer) {}

    void Initialize(pregel::MasterContext& ctx) override {
      SanitizedMasterContext sctx(&ctx, sanitizer_, /*in_initialize=*/true);
      inner_->Initialize(sctx);
    }
    void Compute(pregel::MasterContext& ctx) override {
      SanitizedMasterContext sctx(&ctx, sanitizer_, /*in_initialize=*/false);
      inner_->Compute(sctx);
    }

   private:
    std::unique_ptr<pregel::MasterCompute> inner_;
    BspSanitizer* sanitizer_;
  };

  const SanitizerOptions options_;
  FindingLog log_;
  pregel::PhaseClock* const clock_;
  pregel::ComputationFactory<Traits> user_factory_;
  const Combiner combiner_;

  mutable std::mutex mutex_;
  std::map<std::string, pregel::AggregatorSpec> aggregator_specs_;
  std::map<std::string, OverwriteState> overwrite_state_;
  std::vector<Message> combiner_samples_;
  uint64_t combiner_tests_done_ = 0;
  bool combiner_flagged_ = false;
};

}  // namespace analysis
}  // namespace graft

#endif  // GRAFT_ANALYSIS_SANITIZER_H_
