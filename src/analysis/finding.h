#ifndef GRAFT_ANALYSIS_FINDING_H_
#define GRAFT_ANALYSIS_FINDING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "graph/simple_graph.h"

namespace graft {
class TraceStore;

namespace analysis {

using graft::VertexId;

/// The BSP contract rules the sanitizer enforces (DESIGN.md §9). Values are
/// part of the on-disk finding format — append only.
enum class FindingKind : uint8_t {
  /// (a) SendMessage after VoteToHalt in the same Compute() call: the
  /// message is delivered, but the halt vote says the vertex believed it was
  /// done — a classic source of ghost activations.
  kSendAfterHalt = 0,
  /// (b) Read of a value or message buffer outside the epoch it was
  /// delivered/stamped in (another vertex's Compute(), or a later
  /// superstep).
  kStaleRead = 1,
  /// (c) Aggregator write outside the phase that owns it: vertex Aggregate()
  /// outside the compute phase, or MasterCompute::SetAggregated at the wrong
  /// point in the barrier cycle (e.g. during Initialize, where the value is
  /// clobbered by the superstep-0 aggregator reset).
  kAggregatorPhase = 2,
  /// (d) Vertex value/edge mutation after VoteToHalt without reactivation:
  /// the mutation is kept, but the vertex told the engine it was done.
  kMutationAfterHalt = 3,
  /// (e) Re-executing the vertex with identical inputs (value, edges,
  /// messages, aggregators, RNG stream) produced a different outcome — the
  /// Compute() depends on something outside the captured context (wall
  /// clock, rand(), worker-local scratch state).
  kNondeterminism = 4,
  /// (e) The registered message combiner is not commutative on observed
  /// message pairs; sender-side combining makes the fold order
  /// scheduling-dependent.
  kNonCommutativeCombiner = 5,
  /// (e) Two vertices pushed distinct values into a kOverwrite aggregator in
  /// the same superstep: the merged result depends on worker/slot iteration
  /// order.
  kOrderDependentAggregation = 6,
};
inline constexpr int kNumFindingKinds = 7;

/// Stable identifier used by RunReport JSON/Prometheus and the text views.
const char* FindingKindName(FindingKind kind);

/// One BSP contract violation, first-class alongside vertex traces: recorded
/// into the trace store under the job namespace, counted in the run report,
/// and renderable by the Graft text views.
struct AnalysisFinding {
  static constexpr uint8_t kFormatVersion = 1;

  FindingKind kind = FindingKind::kSendAfterHalt;
  /// Superstep the violation happened in; -1 for master Initialize() (before
  /// superstep 0).
  int64_t superstep = 0;
  /// Offending vertex; -1 for master/job-level findings.
  VertexId vertex = -1;
  /// Worker thread that observed it; -1 for the engine/master thread.
  int32_t worker = -1;
  /// Human-readable specifics: aggregator name, stamped epoch, replay diff.
  std::string detail;

  void Write(BinaryWriter& w) const;
  static Result<AnalysisFinding> Read(BinaryReader& r);
  std::string Serialize() const;
  static Result<AnalysisFinding> Deserialize(std::string_view record);

  /// "send_after_halt at superstep 3 vertex 42: ..." one-liner.
  std::string ToString() const;

  friend bool operator==(const AnalysisFinding&,
                         const AnalysisFinding&) = default;
};

/// Trace-store file holding the findings worker `worker` recorded at
/// `superstep`. Lives inside the superstep directory next to the vertex
/// traces, so PruneTracesFrom discards re-executed findings on recovery the
/// same way it discards re-executed captures. Master/engine-thread findings
/// (worker -1, including superstep -1 Initialize findings, which are filed
/// under superstep 0) land in ".../findings_master.afind".
std::string FindingsFile(const std::string& job_id, int64_t superstep,
                         int32_t worker);

/// Reads back every finding of `job_id`, ordered by (superstep, file,
/// append order) — the round-trip half of "findings are first-class trace
/// records".
Result<std::vector<AnalysisFinding>> ReadFindings(const TraceStore& store,
                                                  const std::string& job_id);

/// Violations-view style table: one row per finding (kind, superstep,
/// vertex, worker, detail). Empty-table rendering for no findings.
std::string RenderFindingsTable(const std::vector<AnalysisFinding>& findings);

}  // namespace analysis
}  // namespace graft

#endif  // GRAFT_ANALYSIS_FINDING_H_
