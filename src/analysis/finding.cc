#include "analysis/finding.h"

#include <utility>

#include "common/status.h"
#include "common/string_util.h"
#include "debug/views/text_table.h"
#include "io/trace_store.h"

namespace graft {
namespace analysis {

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kSendAfterHalt:
      return "send_after_halt";
    case FindingKind::kStaleRead:
      return "stale_read";
    case FindingKind::kAggregatorPhase:
      return "aggregator_phase";
    case FindingKind::kMutationAfterHalt:
      return "mutation_after_halt";
    case FindingKind::kNondeterminism:
      return "nondeterminism";
    case FindingKind::kNonCommutativeCombiner:
      return "non_commutative_combiner";
    case FindingKind::kOrderDependentAggregation:
      return "order_dependent_aggregation";
  }
  return "?";
}

void AnalysisFinding::Write(BinaryWriter& w) const {
  w.WriteU8(kFormatVersion);
  w.WriteU8(static_cast<uint8_t>(kind));
  w.WriteSignedVarint(superstep);
  w.WriteSignedVarint(vertex);
  w.WriteSignedVarint(worker);
  w.WriteString(detail);
}

Result<AnalysisFinding> AnalysisFinding::Read(BinaryReader& r) {
  GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported analysis finding version " +
                                   std::to_string(version));
  }
  AnalysisFinding f;
  GRAFT_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind >= kNumFindingKinds) {
    return Status::InvalidArgument("unknown finding kind " +
                                   std::to_string(kind));
  }
  f.kind = static_cast<FindingKind>(kind);
  GRAFT_ASSIGN_OR_RETURN(f.superstep, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(f.vertex, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(int64_t worker, r.ReadSignedVarint());
  f.worker = static_cast<int32_t>(worker);
  GRAFT_ASSIGN_OR_RETURN(f.detail, r.ReadString());
  return f;
}

std::string AnalysisFinding::Serialize() const {
  BinaryWriter w;
  Write(w);
  return std::move(w.TakeBuffer());
}

Result<AnalysisFinding> AnalysisFinding::Deserialize(std::string_view record) {
  BinaryReader r(record);
  return Read(r);
}

std::string AnalysisFinding::ToString() const {
  std::string where;
  if (vertex >= 0) {
    where = StrFormat("superstep %lld vertex %lld",
                      static_cast<long long>(superstep),
                      static_cast<long long>(vertex));
  } else if (superstep >= 0) {
    where = StrFormat("superstep %lld (master)",
                      static_cast<long long>(superstep));
  } else {
    where = "master initialize";
  }
  return StrFormat("%s at %s: %s", FindingKindName(kind), where.c_str(),
                   detail.c_str());
}

std::string FindingsFile(const std::string& job_id, int64_t superstep,
                         int32_t worker) {
  // Initialize-phase findings (superstep -1) are filed under superstep 0 so
  // every findings file lives inside a prunable superstep directory.
  const long long dir =
      static_cast<long long>(superstep < 0 ? 0 : superstep);
  if (worker < 0) {
    return StrFormat("%s/superstep_%06lld/findings_master.afind",
                     job_id.c_str(), dir);
  }
  return StrFormat("%s/superstep_%06lld/findings_w%03d.afind", job_id.c_str(),
                   dir, static_cast<int>(worker));
}

Result<std::vector<AnalysisFinding>> ReadFindings(const TraceStore& store,
                                                  const std::string& job_id) {
  std::vector<AnalysisFinding> findings;
  for (const std::string& file : store.ListFiles(job_id + "/")) {
    if (file.size() < 6 || file.substr(file.size() - 6) != ".afind") continue;
    GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           store.ReadAll(file));
    for (const std::string& record : records) {
      GRAFT_ASSIGN_OR_RETURN(AnalysisFinding f,
                             AnalysisFinding::Deserialize(record));
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

std::string RenderFindingsTable(const std::vector<AnalysisFinding>& findings) {
  debug::TextTable table({"kind", "superstep", "vertex", "worker", "detail"});
  for (const AnalysisFinding& f : findings) {
    table.AddRow({FindingKindName(f.kind),
                  f.superstep < 0 ? "init"
                                  : std::to_string(f.superstep),
                  f.vertex < 0 ? "-" : std::to_string(f.vertex),
                  f.worker < 0 ? "master" : std::to_string(f.worker),
                  Ellipsize(f.detail, 72)});
  }
  return table.Render();
}

}  // namespace analysis
}  // namespace graft
