#ifndef GRAFT_ANALYSIS_EPOCH_H_
#define GRAFT_ANALYSIS_EPOCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "analysis/finding.h"
#include "common/string_util.h"

namespace graft {
namespace analysis {

/// The ownership window a piece of per-vertex state belongs to: "vertex V's
/// Compute() call at superstep S". The BSP contract says a vertex value or a
/// delivered message buffer may only be read inside its own window —
/// anything else is a cross-vertex or cross-superstep read whose result
/// depends on scheduling (DESIGN.md §9).
struct AccessEpoch {
  int64_t superstep = -1;
  VertexId vertex = -1;
  bool active = false;

  friend bool operator==(const AccessEpoch&, const AccessEpoch&) = default;
};

/// Sink for epoch violations, plus the thread-local current epoch. The
/// sanitizer installs one per worker thread for the duration of each checked
/// Compute() call; with none installed, Stamped<T> degrades to a plain
/// wrapper with no checks and no overhead beyond a thread_local load.
class EpochReporter {
 public:
  using ReportFn = std::function<void(AnalysisFinding)>;

  explicit EpochReporter(ReportFn report) : report_(std::move(report)) {}

  /// Epoch of the Compute() call running on this thread; inactive when no
  /// checked call is in flight.
  static const AccessEpoch& CurrentEpoch() { return epoch_; }

  static EpochReporter* Current() { return current_; }

  /// RAII-style install: returns the previous reporter for restore.
  static EpochReporter* Install(EpochReporter* reporter, AccessEpoch epoch) {
    EpochReporter* previous = current_;
    current_ = reporter;
    epoch_ = epoch;
    return previous;
  }
  static void Uninstall(EpochReporter* previous) {
    current_ = previous;
    epoch_ = AccessEpoch{};
  }

  void Report(AnalysisFinding finding) { report_(std::move(finding)); }

 private:
  ReportFn report_;
  static inline thread_local EpochReporter* current_ = nullptr;
  static inline thread_local AccessEpoch epoch_;
};

/// A value stamped with the epoch it was produced in. Algorithms that stash
/// vertex values or delivered messages (in scratch state, in other vertices'
/// values) can wrap them in Stamped<T>; every Read() then checks the current
/// epoch against the stamp and files a kStaleRead finding on mismatch.
///
/// Outside a checked run (no reporter installed) Get/Read are plain
/// passthroughs — Stamped<T> costs two int64 copies at stamp time and one
/// thread_local test per read, and never alters program behavior.
template <typename T>
class Stamped {
 public:
  Stamped() = default;
  explicit Stamped(T value) : value_(std::move(value)) { Stamp(); }

  /// Stores `value` stamped with the current epoch.
  void Set(T value) {
    value_ = std::move(value);
    Stamp();
  }

  /// Checked read: reports kStaleRead when read from a different vertex's
  /// Compute() or a later superstep than the one that stamped it.
  const T& Read() const {
    if (EpochReporter* reporter = EpochReporter::Current()) {
      const AccessEpoch& now = EpochReporter::CurrentEpoch();
      if (stamp_.active && now.active &&
          (now.vertex != stamp_.vertex || now.superstep != stamp_.superstep)) {
        reporter->Report(AnalysisFinding{
            .kind = FindingKind::kStaleRead,
            .superstep = now.superstep,
            .vertex = now.vertex,
            .detail = StrFormat(
                "read of state stamped by vertex %lld at superstep %lld",
                static_cast<long long>(stamp_.vertex),
                static_cast<long long>(stamp_.superstep))});
      }
    }
    return value_;
  }

  /// Unchecked access, for code outside Compute() (tests, reporting).
  const T& Get() const { return value_; }

  const AccessEpoch& stamp() const { return stamp_; }

 private:
  void Stamp() {
    if (EpochReporter::Current() != nullptr) {
      stamp_ = EpochReporter::CurrentEpoch();
    } else {
      stamp_ = AccessEpoch{};
    }
  }

  T value_{};
  AccessEpoch stamp_;
};

}  // namespace analysis
}  // namespace graft

#endif  // GRAFT_ANALYSIS_EPOCH_H_
