#ifndef GRAFT_ANALYSIS_PREDICATE_H_
#define GRAFT_ANALYSIS_PREDICATE_H_

#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "debug/vertex_trace.h"
#include "pregel/agg_value.h"
#include "pregel/vertex.h"

namespace graft {
namespace analysis {

/// Nesting limit for parenthesized/unary expressions — same DoS discipline
/// as common/json_parser's depth limit for untrusted request bodies.
inline constexpr int kMaxPredicateDepth = 64;

/// The variables a predicate can reference. `uses()` reports which ones a
/// compiled predicate actually reads, so callers can reject predicates that
/// need data they cannot supply (e.g. `value` over a non-numeric vertex
/// value type).
enum PredicateVar : uint32_t {
  kPredValue = 1u << 0,         // vertex value after Compute() (numeric)
  kPredValueBefore = 1u << 1,   // vertex value at Compute() entry (numeric)
  kPredSuperstep = 1u << 2,     // current superstep
  kPredVertexId = 1u << 3,      // vertex id ("id")
  kPredOutDegree = 1u << 4,     // out-edge count
  kPredInDegree = 1u << 5,      // delivered-message count this superstep
  kPredHalted = 1u << 6,        // bool: voted to halt
  kPredException = 1u << 7,     // bool: Compute() threw
  kPredViolations = 1u << 8,    // constraint violations recorded for the call
  kPredWorker = 1u << 9,        // worker index (-1 when unknown)
  kPredAggregator = 1u << 10,   // any agg("name") access
};

/// The evaluation context a predicate runs against: one vertex.compute()
/// observation, either live (conditional breakpoint during capture) or
/// re-read from a trace (TraceQuery filter, minimizer oracle). Non-numeric
/// vertex values surface as NaN, which makes every comparison involving
/// them false — arming a predicate that needs `value` over such a type is
/// rejected up front (see Predicate::CheckInputSupport).
struct PredicateInput {
  double value = std::numeric_limits<double>::quiet_NaN();
  double value_before = std::numeric_limits<double>::quiet_NaN();
  int64_t superstep = 0;
  VertexId vertex_id = 0;
  int64_t out_degree = 0;
  int64_t in_degree = 0;
  bool halted = false;
  bool has_exception = false;
  int64_t violations = 0;
  int worker = -1;
  /// Aggregator values visible to the call (may be null = none visible).
  const std::map<std::string, pregel::AggValue>* aggregators = nullptr;
};

/// A compiled boolean expression over PredicateInput (DESIGN.md §14):
///
///   expr    := or
///   or      := and { "||" and }
///   and     := eq { "&&" eq }
///   eq      := rel { ("==" | "!=") rel }
///   rel     := sum { ("<" | "<=" | ">" | ">=") sum }
///   sum     := term { ("+" | "-") term }
///   term    := unary { ("*" | "/" | "%") unary }
///   unary   := "!" unary | "-" unary | primary
///   primary := number | "true" | "false" | var
///            | "agg" "(" string ")" | "(" expr ")"
///
/// Two types, checked at compile time: numbers (double) and booleans.
/// Comparisons and arithmetic need numeric operands; `&&`/`||`/`!` need
/// booleans; `==`/`!=` accept two numbers or two booleans. Missing
/// aggregators and non-numeric vertex values evaluate to NaN, so every
/// comparison touching them is false (a predicate never "errors" at eval
/// time). Compile() rejects bad tokens, type mismatches, unknown variables,
/// and nesting beyond kMaxPredicateDepth with an offset-bearing message.
///
/// Instances are immutable and cheap to copy (the compiled tree is shared);
/// Eval is const and safe to call from concurrent worker threads.
class Predicate {
 public:
  struct Node;  // defined in predicate.cc

  /// An empty predicate matches nothing.
  Predicate() = default;

  static Result<Predicate> Compile(std::string_view text);

  /// Parse-only validation (the C++ twin of bsp_lint.py's predicate-dsl
  /// rule). OK iff Compile would succeed.
  static Status Validate(std::string_view text);

  bool Eval(const PredicateInput& input) const;

  bool empty() const { return root_ == nullptr; }
  /// Bitmask of PredicateVar bits the expression reads.
  uint32_t uses() const { return uses_; }
  bool Uses(PredicateVar var) const { return (uses_ & var) != 0; }
  /// The source text the predicate was compiled from.
  const std::string& text() const { return text_; }

  /// InvalidArgument when the predicate reads `value`/`value_before` but
  /// `numeric_vertex_value` is false (the Traits' vertex value has no
  /// numeric payload, so those variables would be NaN on every call).
  Status CheckInputSupport(bool numeric_vertex_value) const;

 private:
  Predicate(std::shared_ptr<const Node> root, uint32_t uses, std::string text)
      : root_(std::move(root)), uses_(uses), text_(std::move(text)) {}

  std::shared_ptr<const Node> root_;
  uint32_t uses_ = 0;
  std::string text_;
};

namespace predicate_internal {

/// Matches value types carrying a numeric payload in the repo's
/// `.value`-member convention (Int64Value, DoubleValue, ShortValue...).
template <typename V>
concept NumericPayload = requires(const V& v) {
  { v.value } -> std::convertible_to<double>;
};

}  // namespace predicate_internal

/// The numeric payload of a WritableValue, or NaN when the type has none
/// (NullValue, TextValue). Compile-time dispatch: costs nothing per call.
template <typename V>
double NumericValueOf(const V& v) {
  if constexpr (predicate_internal::NumericPayload<V>) {
    return static_cast<double>(v.value);
  } else {
    (void)v;
    return std::numeric_limits<double>::quiet_NaN();
  }
}

/// True when `Traits::VertexValue` exposes a numeric payload — whether the
/// `value`/`value_before` predicate variables are meaningful for this job.
template <pregel::JobTraits Traits>
inline constexpr bool kHasNumericVertexValue =
    predicate_internal::NumericPayload<typename Traits::VertexValue>;

/// Builds the evaluation context from a stored trace (TraceQuery filter and
/// the minimizer's trace-reading oracle). `worker` is not recorded in the
/// trace body; pass the manifest's worker index when known.
template <pregel::JobTraits Traits>
PredicateInput PredicateInputFromTrace(const debug::VertexTrace<Traits>& trace,
                                       int worker = -1) {
  PredicateInput input;
  input.value = NumericValueOf(trace.value_after);
  input.value_before = NumericValueOf(trace.value_before);
  input.superstep = trace.superstep;
  input.vertex_id = trace.id;
  input.out_degree = static_cast<int64_t>(trace.edges.size());
  input.in_degree = static_cast<int64_t>(trace.incoming.size());
  input.halted = trace.halted_after;
  input.has_exception = trace.exception.has_value();
  input.violations = static_cast<int64_t>(trace.violations.size());
  input.worker = worker;
  input.aggregators = &trace.aggregators;
  return input;
}

}  // namespace analysis
}  // namespace graft

#endif  // GRAFT_ANALYSIS_PREDICATE_H_
