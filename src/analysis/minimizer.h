#ifndef GRAFT_ANALYSIS_MINIMIZER_H_
#define GRAFT_ANALYSIS_MINIMIZER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/finding.h"
#include "analysis/predicate.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "debug/codegen.h"
#include "debug/debug_config.h"
#include "io/trace_store.h"
#include "pregel/job.h"

namespace graft {
namespace analysis {

/// What "failing" means for a minimizer probe (DESIGN.md §14).
enum class OracleKind : uint8_t {
  kPredicate = 0,  // the breakpoint predicate fired at least once
  kSanitizer = 1,  // the BSP sanitizer recorded a finding
  kFailure = 2,    // the job itself ended non-OK (exception/invariant abort)
};

std::string_view OracleKindName(OracleKind kind);
Result<OracleKind> ParseOracleKind(std::string_view name);

struct MinimizerOptions {
  OracleKind oracle = OracleKind::kSanitizer;
  /// Predicate-DSL failure condition (required for kPredicate).
  std::string predicate;
  /// Narrow the sanitizer oracle to one finding kind (nullopt = any).
  std::optional<FindingKind> finding_kind;
  /// Hard budget on job re-runs. ddmin returns its best-so-far subgraph
  /// when the budget runs out (reported, never an error).
  int max_probes = 256;
  /// Phase 1: binary-search the smallest superstep cap at which the oracle
  /// still fires, then run every ddmin probe under that cap.
  bool bisect_supersteps = true;
  /// Phase 3: ddmin over the edges of the vertex-minimal subgraph.
  bool minimize_edges = true;
};

/// Probe-granularity progress, published between probes (the service's
/// GET /jobs/{id}/minimize polls this).
struct MinimizerProgress {
  std::string phase = "pending";  // initial|bisect|ddmin-vertices|
                                  // ddmin-edges|codegen|done|failed
  int probes = 0;
  int failing_probes = 0;
  size_t current_vertices = 0;
  size_t current_edges = 0;
  int64_t superstep_cap = -1;
};
using MinimizerProgressFn = std::function<void(const MinimizerProgress&)>;

/// One vertex of the minimized subgraph, rendered type-erased for the
/// service plane (values via ToString).
struct MinimizedVertex {
  VertexId id = 0;
  std::string value;
  std::vector<std::pair<VertexId, std::string>> edges;  // (target, value)
};

/// The minimizer's result: the smallest-known failing subgraph, the probe
/// accounting, and a generated end-to-end gtest reproducer.
struct MinimizerReport {
  /// False when the oracle did not fire on the full graph — nothing to
  /// minimize (the report then carries only the initial sizes).
  bool reproduced = false;
  std::string oracle;         // OracleKindName
  std::string oracle_detail;  // predicate text / finding kind / job status
  int probes = 0;
  int failing_probes = 0;
  bool probe_budget_exhausted = false;
  double wall_seconds = 0.0;
  size_t initial_vertices = 0;
  size_t initial_edges = 0;
  size_t final_vertices = 0;
  size_t final_edges = 0;
  /// Smallest max_supersteps cap at which the oracle fires (-1 when
  /// bisection was disabled or nothing reproduced).
  int64_t superstep_cap = -1;
  std::vector<MinimizedVertex> subgraph;
  /// Self-contained gtest source (debug::GenerateJobTestCode) that fails
  /// while the bug reproduces on the minimized subgraph.
  std::string reproducer_code;

  std::string ToJson() const;
};

namespace minimizer_internal {

/// Zeller/Hildebrandt ddmin over an index set: returns a (locally) 1-minimal
/// subset for which `test` still returns true. `test` may be called with
/// subsets and complements; `budget` is consulted before each test — when it
/// returns false, ddmin stops and returns its best-so-far set. `test`
/// errors propagate.
Result<std::vector<size_t>> DdMin(
    std::vector<size_t> items,
    const std::function<Result<bool>(const std::vector<size_t>&)>& test,
    const std::function<bool()>& budget);

}  // namespace minimizer_internal

/// Delta-debugging bug localizer (DESIGN.md §14, the paper's §7 "automated
/// bug localization" gap): given a failing oracle over a JobSpec, shrink the
/// input graph to a smallest-known failing subgraph by re-running the job
/// per probe — supersteps first (binary search over the max_supersteps cap;
/// the deterministic fault-free replay guarantee makes the oracle monotone
/// in the cap), then ddmin over vertices (induced subgraphs), then over the
/// surviving edges.
///
/// `SpecFactory` rebuilds everything about the job *except* the graph: the
/// minimizer owns vertices, job_id, trace plumbing, and telemetry (all
/// probes run silent, against a private in-memory store).
template <pregel::JobTraits Traits>
class JobMinimizer {
 public:
  using VertexT = pregel::Vertex<Traits>;
  using EdgeT = pregel::Edge<typename Traits::EdgeValue>;
  using SpecFactory = std::function<pregel::JobSpec<Traits>()>;

  JobMinimizer(SpecFactory spec_factory, std::vector<VertexT> vertices,
               MinimizerOptions options)
      : spec_factory_(std::move(spec_factory)),
        vertices_(std::move(vertices)),
        options_(std::move(options)) {}

  /// Progress callback, invoked between probes on the minimizing thread.
  void set_progress(MinimizerProgressFn fn) { progress_fn_ = std::move(fn); }

  /// Runs the full pipeline and generates the reproducer through `binding`
  /// (the binding's graph-independent fields only; vertices/supersteps are
  /// filled from the minimized result). Errors only on unusable specs or a
  /// bad predicate — "the bug did not reproduce" is a report, not an error.
  Result<MinimizerReport> Run(debug::JobCodegenBinding binding) {
    Stopwatch wall;
    MinimizerReport report;
    report.oracle = std::string(OracleKindName(options_.oracle));
    report.initial_vertices = vertices_.size();
    report.initial_edges = CountEdges(vertices_);

    if (options_.oracle == OracleKind::kPredicate) {
      if (options_.predicate.empty()) {
        return Status::InvalidArgument(
            "minimizer: the predicate oracle needs a non-empty predicate");
      }
      GRAFT_ASSIGN_OR_RETURN(Predicate compiled,
                             Predicate::Compile(options_.predicate));
      GRAFT_RETURN_NOT_OK(
          compiled.CheckInputSupport(kHasNumericVertexValue<Traits>));
      report.oracle_detail = options_.predicate;
    } else if (options_.finding_kind.has_value()) {
      report.oracle_detail = FindingKindName(*options_.finding_kind);
    }

    // Phase 0: does the full graph fail at all?
    progress_.phase = "initial";
    progress_.current_vertices = vertices_.size();
    progress_.current_edges = report.initial_edges;
    PublishProgress();
    std::vector<size_t> all(vertices_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    GRAFT_ASSIGN_OR_RETURN(ProbeOutcome initial, Probe(all, nullptr, 0));
    if (!initial.failed) {
      report.reproduced = false;
      report.probes = probes_;
      report.failing_probes = failing_probes_;
      report.wall_seconds = wall.ElapsedSeconds();
      progress_.phase = "done";
      PublishProgress();
      return report;
    }
    report.reproduced = true;

    // Phase 1: smallest superstep cap at which the oracle still fires.
    // RunJob's deterministic fault-free path makes this monotone: capping
    // at c executes exactly the first c supersteps of the uncapped run.
    int64_t cap = 0;
    if (options_.bisect_supersteps && initial.supersteps > 0) {
      progress_.phase = "bisect";
      PublishProgress();
      int64_t lo = 1;
      int64_t hi = initial.supersteps;  // known failing
      while (lo < hi && HaveBudget()) {
        const int64_t mid = lo + (hi - lo) / 2;
        GRAFT_ASSIGN_OR_RETURN(ProbeOutcome outcome, Probe(all, nullptr, mid));
        if (outcome.failed) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      cap = hi;
      report.superstep_cap = cap;
      progress_.superstep_cap = cap;
    }

    // Phase 2: ddmin over vertices (probes run induced subgraphs).
    progress_.phase = "ddmin-vertices";
    PublishProgress();
    std::map<std::string, bool> memo;
    auto vertex_test =
        [this, cap, &memo](const std::vector<size_t>& subset)
        -> Result<bool> {
      const std::string key = SubsetKey(subset);
      auto it = memo.find(key);
      if (it != memo.end()) return it->second;
      GRAFT_ASSIGN_OR_RETURN(ProbeOutcome outcome,
                             Probe(subset, nullptr, cap));
      memo.emplace(key, outcome.failed);
      return outcome.failed;
    };
    GRAFT_ASSIGN_OR_RETURN(
        std::vector<size_t> min_vertices,
        minimizer_internal::DdMin(all, vertex_test,
                                  [this] { return HaveBudget(); }));

    // Materialize the vertex-minimal induced subgraph.
    std::vector<VertexT> reduced = InducedSubgraph(min_vertices, nullptr);
    progress_.current_vertices = reduced.size();
    progress_.current_edges = CountEdges(reduced);
    PublishProgress();

    // Phase 3: ddmin over the surviving edges.
    if (options_.minimize_edges && progress_.current_edges > 0) {
      progress_.phase = "ddmin-edges";
      PublishProgress();
      std::vector<std::pair<size_t, size_t>> edge_slots;
      for (size_t vi = 0; vi < reduced.size(); ++vi) {
        for (size_t ei = 0; ei < reduced[vi].edges().size(); ++ei) {
          edge_slots.emplace_back(vi, ei);
        }
      }
      std::vector<size_t> edge_indices(edge_slots.size());
      for (size_t i = 0; i < edge_indices.size(); ++i) edge_indices[i] = i;
      std::map<std::string, bool> edge_memo;
      auto edge_test =
          [this, cap, &reduced, &edge_slots, &edge_memo](
              const std::vector<size_t>& subset) -> Result<bool> {
        const std::string key = SubsetKey(subset);
        auto it = edge_memo.find(key);
        if (it != edge_memo.end()) return it->second;
        std::vector<VertexT> probe_vertices =
            FilterEdges(reduced, edge_slots, subset);
        GRAFT_ASSIGN_OR_RETURN(ProbeOutcome outcome,
                               ProbeVertices(probe_vertices, cap));
        edge_memo.emplace(key, outcome.failed);
        return outcome.failed;
      };
      GRAFT_ASSIGN_OR_RETURN(
          std::vector<size_t> min_edges,
          minimizer_internal::DdMin(std::move(edge_indices), edge_test,
                                    [this] { return HaveBudget(); }));
      reduced = FilterEdges(reduced, edge_slots, min_edges);
    }

    // Report + reproducer.
    progress_.phase = "codegen";
    progress_.current_vertices = reduced.size();
    progress_.current_edges = CountEdges(reduced);
    PublishProgress();
    report.final_vertices = reduced.size();
    report.final_edges = progress_.current_edges;
    report.probes = probes_;
    report.failing_probes = failing_probes_;
    report.probe_budget_exhausted = !HaveBudget();
    for (const VertexT& v : reduced) {
      MinimizedVertex mv;
      mv.id = v.id();
      mv.value = v.value().ToString();
      for (const EdgeT& e : v.edges()) {
        mv.edges.emplace_back(e.target, e.value.ToString());
      }
      report.subgraph.push_back(std::move(mv));
    }
    FillOracleCodegen(&binding, cap);
    report.reproducer_code = debug::GenerateJobTestCode(reduced, binding);
    report.wall_seconds = wall.ElapsedSeconds();
    progress_.phase = "done";
    PublishProgress();
    return report;
  }

  /// The minimized subgraph of the last Run (for tests that re-probe it).
  const MinimizerProgress& progress() const { return progress_; }

 private:
  struct ProbeOutcome {
    bool failed = false;
    int64_t supersteps = 0;
  };

  bool HaveBudget() const { return probes_ < options_.max_probes; }

  static uint64_t CountEdges(const std::vector<VertexT>& vertices) {
    uint64_t n = 0;
    for (const VertexT& v : vertices) n += v.edges().size();
    return n;
  }

  static std::string SubsetKey(const std::vector<size_t>& subset) {
    std::string key;
    key.reserve(subset.size() * 4);
    for (size_t i : subset) {
      key += std::to_string(i);
      key.push_back(',');
    }
    return key;
  }

  void PublishProgress() {
    progress_.probes = probes_;
    progress_.failing_probes = failing_probes_;
    if (progress_fn_) progress_fn_(progress_);
  }

  /// The induced subgraph on the given vertex indices: kept vertices with
  /// edges into the kept set only. Dropping out-of-set edges (rather than
  /// dangling them) matters because the engine materializes missing message
  /// targets, which would silently resurrect removed vertices.
  std::vector<VertexT> InducedSubgraph(
      const std::vector<size_t>& indices,
      const std::set<VertexId>* extra_keep) const {
    std::set<VertexId> keep;
    for (size_t i : indices) keep.insert(vertices_[i].id());
    if (extra_keep != nullptr) keep.insert(extra_keep->begin(),
                                           extra_keep->end());
    std::vector<VertexT> out;
    out.reserve(indices.size());
    for (size_t i : indices) {
      const VertexT& v = vertices_[i];
      std::vector<EdgeT> edges;
      for (const EdgeT& e : v.edges()) {
        if (keep.count(e.target) != 0) edges.push_back(e);
      }
      out.emplace_back(v.id(), v.value(), std::move(edges));
    }
    return out;
  }

  /// `base` with only the edge slots named by `subset` retained.
  static std::vector<VertexT> FilterEdges(
      const std::vector<VertexT>& base,
      const std::vector<std::pair<size_t, size_t>>& slots,
      const std::vector<size_t>& subset) {
    std::set<std::pair<size_t, size_t>> keep;
    for (size_t i : subset) keep.insert(slots[i]);
    std::vector<VertexT> out;
    out.reserve(base.size());
    for (size_t vi = 0; vi < base.size(); ++vi) {
      std::vector<EdgeT> edges;
      const auto& all_edges = base[vi].edges();
      for (size_t ei = 0; ei < all_edges.size(); ++ei) {
        if (keep.count({vi, ei}) != 0) edges.push_back(all_edges[ei]);
      }
      out.emplace_back(base[vi].id(), base[vi].value(), std::move(edges));
    }
    return out;
  }

  Result<ProbeOutcome> Probe(const std::vector<size_t>& vertex_indices,
                             const std::set<VertexId>* extra_keep,
                             int64_t superstep_cap) {
    return ProbeVertices(InducedSubgraph(vertex_indices, extra_keep),
                         superstep_cap);
  }

  /// One oracle evaluation = one silent re-run of the job over `vertices`.
  Result<ProbeOutcome> ProbeVertices(const std::vector<VertexT>& vertices,
                                     int64_t superstep_cap) {
    pregel::JobSpec<Traits> spec = spec_factory_();
    spec.vertices = vertices;
    spec.options.job_id = StrFormat("minprobe-%06d", probes_);
    if (superstep_cap > 0) spec.options.max_supersteps = superstep_cap;
    // Probes run silent and self-contained: no metrics, no telemetry, no
    // checkpoints, no faults — the PR 3/5 fault-free deterministic path.
    spec.options.metrics = nullptr;
    spec.telemetry = {};
    spec.checkpoint = {};
    spec.fault_injector = nullptr;
    spec.max_recovery_attempts = 0;
    InMemoryTraceStore scratch;
    switch (options_.oracle) {
      case OracleKind::kPredicate:
        spec.analysis.breakpoint = options_.predicate;
        spec.trace_store = &scratch;
        if (spec.debug_config == nullptr) spec.debug_config = &probe_config_;
        break;
      case OracleKind::kSanitizer:
        spec.sanitizer.enabled = true;
        // Count findings over the whole (capped) run: fail-fast would make
        // the finding count depend on scheduling, not on the graph.
        spec.sanitizer.fail_on_violation = false;
        spec.analysis.breakpoint.clear();
        spec.debug_config = nullptr;
        spec.trace_store = nullptr;
        break;
      case OracleKind::kFailure:
        spec.analysis.breakpoint.clear();
        spec.debug_config = nullptr;
        spec.trace_store = nullptr;
        break;
    }
    ++probes_;
    GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                           pregel::RunJob(std::move(spec)));
    ProbeOutcome outcome;
    outcome.supersteps = summary.stats.supersteps;
    switch (options_.oracle) {
      case OracleKind::kPredicate:
        outcome.failed = summary.breakpoint_hits > 0;
        break;
      case OracleKind::kSanitizer:
        if (options_.finding_kind.has_value()) {
          const char* want = FindingKindName(*options_.finding_kind);
          for (const auto& [kind, count] :
               summary.stats.report.analysis.findings_by_kind) {
            if (kind == want && count > 0) outcome.failed = true;
          }
        } else {
          outcome.failed = summary.analysis_findings > 0;
        }
        break;
      case OracleKind::kFailure:
        outcome.failed = !summary.job_status.ok();
        break;
    }
    if (outcome.failed) ++failing_probes_;
    PublishProgress();
    return outcome;
  }

  /// Fills the oracle-dependent codegen lines: the spec assignments that
  /// re-arm the oracle and the assertions that fail while the bug is alive.
  void FillOracleCodegen(debug::JobCodegenBinding* binding,
                         int64_t superstep_cap) const {
    if (superstep_cap > 0) binding->max_supersteps = superstep_cap;
    switch (options_.oracle) {
      case OracleKind::kPredicate: {
        binding->with_capture = true;
        binding->spec_lines.push_back("spec.analysis.breakpoint = \"" +
                                      EscapeCppString(options_.predicate) +
                                      "\";");
        binding->assert_lines.push_back(
            "EXPECT_EQ(summary->breakpoint_hits, 0u)\n      << \"predicate "
            "'" +
            EscapeCppString(options_.predicate) +
            "' still fires on the minimized graph\";");
        break;
      }
      case OracleKind::kSanitizer:
        binding->spec_lines.push_back("spec.sanitizer.enabled = true;");
        binding->spec_lines.push_back(
            "spec.sanitizer.fail_on_violation = false;");
        binding->assert_lines.push_back(
            "EXPECT_EQ(summary->analysis_findings, 0u)\n      << \"the BSP "
            "sanitizer still flags the minimized graph\";");
        break;
      case OracleKind::kFailure:
        binding->assert_lines.push_back(
            "EXPECT_TRUE(summary->job_status.ok())\n      << "
            "summary->job_status.ToString();");
        break;
    }
  }

  /// Escapes a predicate for embedding in a generated C++ string literal.
  static std::string EscapeCppString(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  SpecFactory spec_factory_;
  std::vector<VertexT> vertices_;
  MinimizerOptions options_;
  MinimizerProgressFn progress_fn_;
  MinimizerProgress progress_;
  debug::ConfigurableDebugConfig<Traits> probe_config_;
  int probes_ = 0;
  int failing_probes_ = 0;
};

}  // namespace analysis
}  // namespace graft

#endif  // GRAFT_ANALYSIS_MINIMIZER_H_
