#include "analysis/minimizer.h"

#include <algorithm>

#include "common/json_writer.h"

namespace graft {
namespace analysis {

std::string_view OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kPredicate:
      return "predicate";
    case OracleKind::kSanitizer:
      return "sanitizer";
    case OracleKind::kFailure:
      return "failure";
  }
  return "unknown";
}

Result<OracleKind> ParseOracleKind(std::string_view name) {
  if (name == "predicate") return OracleKind::kPredicate;
  if (name == "sanitizer") return OracleKind::kSanitizer;
  if (name == "failure") return OracleKind::kFailure;
  return Status::InvalidArgument(StrFormat(
      "unknown minimizer oracle '%.*s' (want predicate|sanitizer|failure)",
      static_cast<int>(name.size()), name.data()));
}

std::string MinimizerReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("reproduced", reproduced);
  w.KV("oracle", oracle);
  w.KV("oracle_detail", oracle_detail);
  w.KV("probes", static_cast<int64_t>(probes));
  w.KV("failing_probes", static_cast<int64_t>(failing_probes));
  w.KV("probe_budget_exhausted", probe_budget_exhausted);
  w.KV("wall_seconds", wall_seconds);
  w.KV("initial_vertices", static_cast<uint64_t>(initial_vertices));
  w.KV("initial_edges", static_cast<uint64_t>(initial_edges));
  w.KV("final_vertices", static_cast<uint64_t>(final_vertices));
  w.KV("final_edges", static_cast<uint64_t>(final_edges));
  w.KV("superstep_cap", superstep_cap);
  w.Key("subgraph");
  w.BeginArray();
  for (const MinimizedVertex& v : subgraph) {
    w.BeginObject();
    w.KV("id", v.id);
    w.KV("value", v.value);
    w.Key("edges");
    w.BeginArray();
    for (const auto& [target, value] : v.edges) {
      w.BeginObject();
      w.KV("target", target);
      w.KV("value", value);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.KV("has_reproducer", !reproducer_code.empty());
  w.EndObject();
  return w.TakeString();
}

namespace minimizer_internal {

namespace {

/// items \ subset (both sorted ascending).
std::vector<size_t> Complement(const std::vector<size_t>& items,
                               const std::vector<size_t>& subset) {
  std::vector<size_t> out;
  out.reserve(items.size() - subset.size());
  std::set_difference(items.begin(), items.end(), subset.begin(),
                      subset.end(), std::back_inserter(out));
  return out;
}

}  // namespace

Result<std::vector<size_t>> DdMin(
    std::vector<size_t> items,
    const std::function<Result<bool>(const std::vector<size_t>&)>& test,
    const std::function<bool()>& budget) {
  std::sort(items.begin(), items.end());
  if (items.size() <= 1) return items;
  size_t n = 2;
  while (items.size() >= 2) {
    // Partition into n roughly equal chunks.
    std::vector<std::vector<size_t>> chunks(n);
    for (size_t i = 0; i < items.size(); ++i) {
      chunks[i * n / items.size()].push_back(items[i]);
    }
    bool reduced = false;
    // Reduce to subset: some single chunk already fails.
    for (const std::vector<size_t>& chunk : chunks) {
      if (chunk.empty() || chunk.size() == items.size()) continue;
      if (!budget()) return items;
      GRAFT_ASSIGN_OR_RETURN(bool fails, test(chunk));
      if (fails) {
        items = chunk;
        n = 2;
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    // Reduce to complement: dropping one chunk still fails.
    if (n > 2) {
      for (const std::vector<size_t>& chunk : chunks) {
        if (chunk.empty() || chunk.size() == items.size()) continue;
        std::vector<size_t> rest = Complement(items, chunk);
        if (!budget()) return items;
        GRAFT_ASSIGN_OR_RETURN(bool fails, test(rest));
        if (fails) {
          items = std::move(rest);
          n = std::max<size_t>(2, n - 1);
          reduced = true;
          break;
        }
      }
      if (reduced) continue;
    }
    // Increase granularity or stop at 1-minimality.
    if (n >= items.size()) break;
    n = std::min(items.size(), n * 2);
  }
  return items;
}

}  // namespace minimizer_internal

}  // namespace analysis
}  // namespace graft
