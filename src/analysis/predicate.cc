#include "analysis/predicate.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace graft {
namespace analysis {
namespace {

enum class Type : uint8_t { kNum, kBool };

const char* TypeName(Type t) { return t == Type::kNum ? "number" : "bool"; }

enum class Op : uint8_t {
  kOr, kAnd,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kNot, kNeg,
};

const char* OpName(Op op) {
  switch (op) {
    case Op::kOr: return "||";
    case Op::kAnd: return "&&";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kNot: return "!";
    case Op::kNeg: return "-";
  }
  return "?";
}

struct VarSpec {
  const char* name;
  PredicateVar bit;
  Type type;
};

constexpr VarSpec kVars[] = {
    {"value", kPredValue, Type::kNum},
    {"value_before", kPredValueBefore, Type::kNum},
    {"superstep", kPredSuperstep, Type::kNum},
    {"id", kPredVertexId, Type::kNum},
    {"out_degree", kPredOutDegree, Type::kNum},
    {"in_degree", kPredInDegree, Type::kNum},
    {"halted", kPredHalted, Type::kBool},
    {"has_exception", kPredException, Type::kBool},
    {"violations", kPredViolations, Type::kNum},
    {"worker", kPredWorker, Type::kNum},
};

}  // namespace

/// One compiled expression node. The tree is immutable after Compile and
/// shared between Predicate copies.
struct Predicate::Node {
  enum class Kind : uint8_t { kNumLit, kBoolLit, kVar, kAgg, kUnary, kBinary };

  Kind kind = Kind::kNumLit;
  Type type = Type::kNum;
  Op op = Op::kOr;                  // kUnary/kBinary
  double number = 0.0;              // kNumLit
  bool boolean = false;             // kBoolLit
  PredicateVar var = kPredValue;    // kVar
  std::string agg_name;             // kAgg
  std::unique_ptr<Node> lhs;
  std::unique_ptr<Node> rhs;
};

namespace {

using Node = Predicate::Node;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind : uint8_t {
  kNumber, kIdent, kString, kOp, kLParen, kRParen, kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  size_t offset = 0;
  double number = 0.0;
  std::string text;  // ident name, string body, or operator spelling
};

Status TokenError(size_t offset, const std::string& what) {
  return Status::InvalidArgument(
      StrFormat("predicate: %s at offset %zu", what.c_str(), offset));
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == '(') {
      token.kind = TokKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokKind::kRParen;
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) ||
              text[j] == '.' || text[j] == 'e' || text[j] == 'E' ||
              ((text[j] == '+' || text[j] == '-') && j > i &&
               (text[j - 1] == 'e' || text[j - 1] == 'E')))) {
        ++j;
      }
      const std::string literal(text.substr(i, j - i));
      char* end = nullptr;
      token.number = std::strtod(literal.c_str(), &end);
      if (end != literal.c_str() + literal.size()) {
        return TokenError(i, "bad number literal '" + literal + "'");
      }
      token.kind = TokKind::kNumber;
      i = j;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      token.kind = TokKind::kIdent;
      token.text = std::string(text.substr(i, j - i));
      i = j;
    } else if (c == '"') {
      size_t j = i + 1;
      while (j < text.size() && text[j] != '"') ++j;
      if (j >= text.size()) {
        return TokenError(i, "unterminated string");
      }
      token.kind = TokKind::kString;
      token.text = std::string(text.substr(i + 1, j - i - 1));
      i = j + 1;
    } else if (c == '&' || c == '|') {
      if (i + 1 >= text.size() || text[i + 1] != c) {
        return TokenError(i, std::string("bad token '") + c + "'");
      }
      token.kind = TokKind::kOp;
      token.text = std::string(2, c);
      i += 2;
    } else if (c == '=' || c == '!' || c == '<' || c == '>') {
      token.kind = TokKind::kOp;
      if (i + 1 < text.size() && text[i + 1] == '=') {
        token.text = std::string(1, c) + "=";
        i += 2;
      } else if (c == '=') {
        return TokenError(i, "bad token '=' (use '==')");
      } else {
        token.text = std::string(1, c);
        ++i;
      }
    } else if (c == '+' || c == '-' || c == '*' || c == '/' || c == '%') {
      token.kind = TokKind::kOp;
      token.text = std::string(1, c);
      ++i;
    } else {
      return TokenError(i, std::string("bad token '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.kind = TokKind::kEnd;
  end_token.offset = text.size();
  tokens.push_back(std::move(end_token));
  return tokens;
}

// ---------------------------------------------------------------------------
// Recursive-descent parser + type checker
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Node>> Parse() {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseOr(0));
    if (Peek().kind != TokKind::kEnd) {
      return TokenError(Peek().offset, "trailing input");
    }
    return root;
  }

  uint32_t uses() const { return uses_; }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumeOp(std::string_view spelling) {
    if (Peek().kind == TokKind::kOp && Peek().text == spelling) {
      ++pos_;
      return true;
    }
    return false;
  }

  static Status TypeMismatch(size_t offset, Op op, Type lhs, Type rhs) {
    return TokenError(offset,
                      StrFormat("type mismatch: '%s' applied to %s and %s",
                                OpName(op), TypeName(lhs), TypeName(rhs)));
  }

  static std::unique_ptr<Node> MakeBinary(Op op, Type type,
                                          std::unique_ptr<Node> lhs,
                                          std::unique_ptr<Node> rhs) {
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::kBinary;
    node->type = type;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<std::unique_ptr<Node>> ParseOr(int depth) {
    GRAFT_RETURN_NOT_OK(CheckDepth(depth));
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> lhs, ParseAnd(depth));
    while (true) {
      const size_t offset = Peek().offset;
      if (!ConsumeOp("||")) return lhs;
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> rhs, ParseAnd(depth));
      if (lhs->type != Type::kBool || rhs->type != Type::kBool) {
        return TypeMismatch(offset, Op::kOr, lhs->type, rhs->type);
      }
      lhs = MakeBinary(Op::kOr, Type::kBool, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Node>> ParseAnd(int depth) {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> lhs, ParseEquality(depth));
    while (true) {
      const size_t offset = Peek().offset;
      if (!ConsumeOp("&&")) return lhs;
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> rhs, ParseEquality(depth));
      if (lhs->type != Type::kBool || rhs->type != Type::kBool) {
        return TypeMismatch(offset, Op::kAnd, lhs->type, rhs->type);
      }
      lhs = MakeBinary(Op::kAnd, Type::kBool, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Node>> ParseEquality(int depth) {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> lhs, ParseRelational(depth));
    while (true) {
      const size_t offset = Peek().offset;
      Op op;
      if (ConsumeOp("==")) {
        op = Op::kEq;
      } else if (ConsumeOp("!=")) {
        op = Op::kNe;
      } else {
        return lhs;
      }
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> rhs,
                             ParseRelational(depth));
      if (lhs->type != rhs->type) {
        return TypeMismatch(offset, op, lhs->type, rhs->type);
      }
      lhs = MakeBinary(op, Type::kBool, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Node>> ParseRelational(int depth) {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> lhs, ParseSum(depth));
    while (true) {
      const size_t offset = Peek().offset;
      Op op;
      if (ConsumeOp("<")) {
        op = Op::kLt;
      } else if (ConsumeOp("<=")) {
        op = Op::kLe;
      } else if (ConsumeOp(">")) {
        op = Op::kGt;
      } else if (ConsumeOp(">=")) {
        op = Op::kGe;
      } else {
        return lhs;
      }
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> rhs, ParseSum(depth));
      if (lhs->type != Type::kNum || rhs->type != Type::kNum) {
        return TypeMismatch(offset, op, lhs->type, rhs->type);
      }
      lhs = MakeBinary(op, Type::kBool, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Node>> ParseSum(int depth) {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> lhs, ParseTerm(depth));
    while (true) {
      const size_t offset = Peek().offset;
      Op op;
      if (ConsumeOp("+")) {
        op = Op::kAdd;
      } else if (ConsumeOp("-")) {
        op = Op::kSub;
      } else {
        return lhs;
      }
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> rhs, ParseTerm(depth));
      if (lhs->type != Type::kNum || rhs->type != Type::kNum) {
        return TypeMismatch(offset, op, lhs->type, rhs->type);
      }
      lhs = MakeBinary(op, Type::kNum, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Node>> ParseTerm(int depth) {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> lhs, ParseUnary(depth));
    while (true) {
      const size_t offset = Peek().offset;
      Op op;
      if (ConsumeOp("*")) {
        op = Op::kMul;
      } else if (ConsumeOp("/")) {
        op = Op::kDiv;
      } else if (ConsumeOp("%")) {
        op = Op::kMod;
      } else {
        return lhs;
      }
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> rhs, ParseUnary(depth));
      if (lhs->type != Type::kNum || rhs->type != Type::kNum) {
        return TypeMismatch(offset, op, lhs->type, rhs->type);
      }
      lhs = MakeBinary(op, Type::kNum, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Node>> ParseUnary(int depth) {
    GRAFT_RETURN_NOT_OK(CheckDepth(depth));
    const size_t offset = Peek().offset;
    if (ConsumeOp("!")) {
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> operand,
                             ParseUnary(depth + 1));
      if (operand->type != Type::kBool) {
        return TokenError(offset, StrFormat("type mismatch: '!' applied to %s",
                                            TypeName(operand->type)));
      }
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::kUnary;
      node->type = Type::kBool;
      node->op = Op::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    if (ConsumeOp("-")) {
      GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> operand,
                             ParseUnary(depth + 1));
      if (operand->type != Type::kNum) {
        return TokenError(offset,
                          StrFormat("type mismatch: unary '-' applied to %s",
                                    TypeName(operand->type)));
      }
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::kUnary;
      node->type = Type::kNum;
      node->op = Op::kNeg;
      node->lhs = std::move(operand);
      return node;
    }
    return ParsePrimary(depth);
  }

  Result<std::unique_ptr<Node>> ParsePrimary(int depth) {
    const Token& token = Peek();
    switch (token.kind) {
      case TokKind::kNumber: {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::kNumLit;
        node->type = Type::kNum;
        node->number = Next().number;
        return node;
      }
      case TokKind::kLParen: {
        Next();
        GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> inner,
                               ParseOr(depth + 1));
        if (Peek().kind != TokKind::kRParen) {
          return TokenError(Peek().offset, "expected ')'");
        }
        Next();
        return inner;
      }
      case TokKind::kIdent:
        return ParseIdent(depth);
      default:
        return TokenError(token.offset, "expected a value");
    }
  }

  Result<std::unique_ptr<Node>> ParseIdent(int depth) {
    (void)depth;
    const Token token = Next();
    if (token.text == "true" || token.text == "false") {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::kBoolLit;
      node->type = Type::kBool;
      node->boolean = token.text == "true";
      return node;
    }
    if (token.text == "agg") {
      if (Peek().kind != TokKind::kLParen) {
        return TokenError(Peek().offset, "expected '(' after 'agg'");
      }
      Next();
      if (Peek().kind != TokKind::kString) {
        return TokenError(Peek().offset,
                          "expected a quoted aggregator name in agg(...)");
      }
      std::string name = Next().text;
      if (Peek().kind != TokKind::kRParen) {
        return TokenError(Peek().offset, "expected ')' after agg name");
      }
      Next();
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::kAgg;
      node->type = Type::kNum;
      node->agg_name = std::move(name);
      uses_ |= kPredAggregator;
      return node;
    }
    for (const VarSpec& spec : kVars) {
      if (token.text == spec.name) {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::kVar;
        node->type = spec.type;
        node->var = spec.bit;
        uses_ |= spec.bit;
        return node;
      }
    }
    return TokenError(token.offset,
                      "unknown variable '" + token.text + "'");
  }

  Status CheckDepth(int depth) const {
    if (depth >= kMaxPredicateDepth) {
      return Status::InvalidArgument(
          StrFormat("predicate: nesting deeper than %d", kMaxPredicateDepth));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  uint32_t uses_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

double EvalNum(const Node& node, const PredicateInput& input);
bool EvalBool(const Node& node, const PredicateInput& input);

double EvalVarNum(PredicateVar var, const PredicateInput& input) {
  switch (var) {
    case kPredValue: return input.value;
    case kPredValueBefore: return input.value_before;
    case kPredSuperstep: return static_cast<double>(input.superstep);
    case kPredVertexId: return static_cast<double>(input.vertex_id);
    case kPredOutDegree: return static_cast<double>(input.out_degree);
    case kPredInDegree: return static_cast<double>(input.in_degree);
    case kPredViolations: return static_cast<double>(input.violations);
    case kPredWorker: return static_cast<double>(input.worker);
    default: return std::numeric_limits<double>::quiet_NaN();
  }
}

/// Aggregators are exposed as numbers: ints and doubles verbatim, bools as
/// 0/1, text and absent names as NaN (so comparisons never match them).
double EvalAgg(const std::string& name, const PredicateInput& input) {
  if (input.aggregators == nullptr) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  auto it = input.aggregators->find(name);
  if (it == input.aggregators->end()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const pregel::AggValue& value = it->second;
  if (value.IsInt()) return static_cast<double>(value.AsInt());
  if (value.IsDouble()) return value.AsDouble();
  if (value.IsBool()) return value.AsBool() ? 1.0 : 0.0;
  return std::numeric_limits<double>::quiet_NaN();
}

double EvalNum(const Node& node, const PredicateInput& input) {
  switch (node.kind) {
    case Node::Kind::kNumLit:
      return node.number;
    case Node::Kind::kVar:
      return EvalVarNum(node.var, input);
    case Node::Kind::kAgg:
      return EvalAgg(node.agg_name, input);
    case Node::Kind::kUnary:
      return -EvalNum(*node.lhs, input);
    case Node::Kind::kBinary: {
      const double lhs = EvalNum(*node.lhs, input);
      const double rhs = EvalNum(*node.rhs, input);
      switch (node.op) {
        case Op::kAdd: return lhs + rhs;
        case Op::kSub: return lhs - rhs;
        case Op::kMul: return lhs * rhs;
        case Op::kDiv: return lhs / rhs;
        case Op::kMod: return std::fmod(lhs, rhs);
        default: return std::numeric_limits<double>::quiet_NaN();
      }
    }
    default:
      return std::numeric_limits<double>::quiet_NaN();
  }
}

bool EvalBool(const Node& node, const PredicateInput& input) {
  switch (node.kind) {
    case Node::Kind::kBoolLit:
      return node.boolean;
    case Node::Kind::kVar:
      return node.var == kPredHalted ? input.halted : input.has_exception;
    case Node::Kind::kUnary:
      return !EvalBool(*node.lhs, input);
    case Node::Kind::kBinary:
      switch (node.op) {
        case Op::kOr:
          return EvalBool(*node.lhs, input) || EvalBool(*node.rhs, input);
        case Op::kAnd:
          return EvalBool(*node.lhs, input) && EvalBool(*node.rhs, input);
        case Op::kEq:
        case Op::kNe: {
          bool equal;
          if (node.lhs->type == Type::kBool) {
            equal = EvalBool(*node.lhs, input) == EvalBool(*node.rhs, input);
          } else {
            // IEEE semantics: NaN compares unequal to everything, so a
            // missing aggregator satisfies `!=` — intentional ("the value
            // is not N" includes "there is no value").
            equal = EvalNum(*node.lhs, input) == EvalNum(*node.rhs, input);
          }
          return node.op == Op::kEq ? equal : !equal;
        }
        case Op::kLt:
          return EvalNum(*node.lhs, input) < EvalNum(*node.rhs, input);
        case Op::kLe:
          return EvalNum(*node.lhs, input) <= EvalNum(*node.rhs, input);
        case Op::kGt:
          return EvalNum(*node.lhs, input) > EvalNum(*node.rhs, input);
        case Op::kGe:
          return EvalNum(*node.lhs, input) >= EvalNum(*node.rhs, input);
        default:
          return false;
      }
    default:
      return false;
  }
}

}  // namespace

Result<Predicate> Predicate::Compile(std::string_view text) {
  GRAFT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, parser.Parse());
  if (root->type != Type::kBool) {
    return Status::InvalidArgument(
        "predicate: expression is a number, not a condition (add a "
        "comparison)");
  }
  return Predicate(std::shared_ptr<const Node>(std::move(root)),
                   parser.uses(), std::string(text));
}

Status Predicate::Validate(std::string_view text) {
  return Compile(text).status();
}

bool Predicate::Eval(const PredicateInput& input) const {
  if (root_ == nullptr) return false;
  return EvalBool(*root_, input);
}

Status Predicate::CheckInputSupport(bool numeric_vertex_value) const {
  if (!numeric_vertex_value && (uses_ & (kPredValue | kPredValueBefore))) {
    return Status::InvalidArgument(
        "predicate reads 'value' but this job's vertex value type has no "
        "numeric payload");
  }
  return Status::OK();
}

}  // namespace analysis
}  // namespace graft
