#ifndef GRAFT_ANALYSIS_FINDING_LOG_H_
#define GRAFT_ANALYSIS_FINDING_LOG_H_

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/finding.h"
#include "common/status.h"
#include "io/trace_store.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace graft {
namespace analysis {

/// Collector for BSP contract violations, shared by every checked context of
/// a job run. Thread-safe: worker threads Record() concurrently during the
/// compute phase.
///
/// Each accepted finding is (1) kept in memory for the run summary and the
/// text views, (2) appended to the trace store under the job namespace — the
/// same superstep directories the capture layer uses, so recovery pruning
/// covers both — and (3) counted per kind for obs::RunReport.
///
/// Findings are deduplicated on (kind, superstep, vertex, detail): a vertex
/// that mutates its value in a loop after halting yields one finding per
/// Compute() call, not one per iteration, and an attempt re-running a
/// superstep after crash recovery does not double-record what the store
/// already rewound.
class FindingLog {
 public:
  using AbortFn = std::function<void(Status)>;

  /// `store` may be null (no persistence — bench/unit use). `fatal` makes
  /// every recorded finding abort the run via the abort callback.
  FindingLog(TraceStore* store, std::string job_id, bool fatal)
      : store_(store), job_id_(std::move(job_id)), fatal_(fatal) {}

  FindingLog(const FindingLog&) = delete;
  FindingLog& operator=(const FindingLog&) = delete;

  /// Wires the fatal path to the current engine attempt (RequestAbort). Also
  /// invoked when persisting a finding fails, with the store's status, so an
  /// unavailable store surfaces as a retryable attempt failure exactly like
  /// the capture path.
  void set_abort(AbortFn abort) {
    std::lock_guard<std::mutex> lock(mutex_);
    abort_ = std::move(abort);
  }

  /// Records one violation; returns false when it was a duplicate.
  bool Record(AnalysisFinding finding) {
    Status store_failure = Status::OK();
    std::string message;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto key = std::make_tuple(static_cast<uint8_t>(finding.kind),
                                 finding.superstep, finding.vertex,
                                 finding.detail);
      if (!seen_.insert(std::move(key)).second) return false;
      counts_[static_cast<size_t>(finding.kind)]++;
      if (store_ != nullptr) {
        store_failure = store_->Append(
            FindingsFile(job_id_, finding.superstep, finding.worker),
            finding.Serialize());
      }
      if (fatal_) message = finding.ToString();
      findings_.push_back(std::move(finding));
    }
    if (!store_failure.ok()) {
      Abort(std::move(store_failure));
    } else if (fatal_) {
      // RequestAbort only flips an engine flag and never re-enters the log,
      // so raising under the abort lock is fine.
      Abort(Status::Aborted("BSP contract violation: " + message));
    }
    return true;
  }

  /// Crash-recovery rewind, the in-memory mirror of PruneTracesFrom: drops
  /// findings recorded at supersteps >= `superstep` (their store files were
  /// just pruned) so the re-executed supersteps can record them afresh.
  /// Probe counters are cumulative overhead accounting and are kept.
  void RewindToSuperstep(int64_t superstep) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase_if(findings_, [&](const AnalysisFinding& f) {
      return f.superstep >= superstep;
    });
    std::erase_if(seen_, [&](const auto& key) {
      return std::get<1>(key) >= superstep;
    });
    counts_.fill(0);
    for (const AnalysisFinding& f : findings_) {
      counts_[static_cast<size_t>(f.kind)]++;
    }
  }

  /// Determinism-probe accounting (probes run, mismatches found, seconds
  /// spent re-executing) — the sanitizer's analogue of capture overhead.
  void AccountProbe(bool mismatch, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    probes_++;
    if (mismatch) probe_mismatches_++;
    probe_seconds_ += seconds;
  }

  std::vector<AnalysisFinding> findings() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return findings_;
  }

  uint64_t total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (uint64_t c : counts_) total += c;
    return total;
  }

  uint64_t CountOf(FindingKind kind) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_[static_cast<size_t>(kind)];
  }

  /// Copies the run's analysis accounting into the report profile.
  void FillAnalysisProfile(obs::AnalysisProfile* profile) const {
    std::lock_guard<std::mutex> lock(mutex_);
    profile->enabled = true;
    profile->fail_on_violation = fatal_;
    profile->findings_total = 0;
    profile->findings_by_kind.clear();
    for (int k = 0; k < kNumFindingKinds; ++k) {
      profile->findings_total += counts_[k];
      if (counts_[k] > 0) {
        profile->findings_by_kind.emplace_back(
            FindingKindName(static_cast<FindingKind>(k)), counts_[k]);
      }
    }
    profile->determinism_probes = probes_;
    profile->determinism_mismatches = probe_mismatches_;
    profile->probe_seconds = probe_seconds_;
  }

  void ExportMetrics(obs::MetricsRegistry* registry) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int k = 0; k < kNumFindingKinds; ++k) {
      if (counts_[k] == 0) continue;
      registry
          ->GetCounter(std::string("analysis.findings_total.") +
                       FindingKindName(static_cast<FindingKind>(k)))
          ->Increment(counts_[k]);
    }
    registry->GetCounter("analysis.determinism_probes_total")
        ->Increment(probes_);
    registry->GetGauge("analysis.probe_seconds")->Add(probe_seconds_);
  }

 private:
  void Abort(Status status) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (abort_) abort_(std::move(status));
  }

  using Key = std::tuple<uint8_t, int64_t, VertexId, std::string>;

  TraceStore* const store_;
  const std::string job_id_;
  const bool fatal_;

  mutable std::mutex mutex_;
  AbortFn abort_;
  std::set<Key> seen_;
  std::vector<AnalysisFinding> findings_;
  std::array<uint64_t, kNumFindingKinds> counts_{};
  uint64_t probes_ = 0;
  uint64_t probe_mismatches_ = 0;
  double probe_seconds_ = 0.0;
};

}  // namespace analysis
}  // namespace graft

#endif  // GRAFT_ANALYSIS_FINDING_LOG_H_
