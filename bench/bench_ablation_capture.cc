// Ablation: the unit costs behind Figure 7's overhead (google-benchmark).
//
//   * serializing / deserializing a representative captured vertex context
//   * the per-send message-constraint check + interception indirection
//   * a whole instrumented-but-capture-nothing job vs the plain engine
//     (the floor cost of running under Graft at all)

#include <benchmark/benchmark.h>

#include "algos/connected_components.h"
#include "algos/graph_coloring.h"
#include "debug/debug_runner.h"
#include "debug/vertex_trace.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

namespace {

using graft::VertexId;
using graft::algos::CCTraits;
using graft::algos::GCTraits;

graft::debug::VertexTrace<GCTraits> MakeRepresentativeTrace() {
  graft::debug::VertexTrace<GCTraits> trace;
  trace.superstep = 41;
  trace.id = 672;
  trace.reasons = graft::debug::kReasonSpecified;
  trace.value_before = graft::algos::GCVertexValue{
      -1, graft::algos::GCState::kTentativelyInSet, 3, 0.42};
  for (VertexId t : {671, 673, 675}) {
    trace.edges.push_back({t, graft::pregel::NullValue{}});
  }
  trace.incoming.push_back(graft::algos::GCMessage{
      graft::algos::GCMessageType::kTentative, 671, 0.17});
  trace.incoming.push_back(graft::algos::GCMessage{
      graft::algos::GCMessageType::kTentative, 673, 0.93});
  trace.aggregators["gc.phase"] =
      graft::pregel::AggValue{std::string("CONFLICT-RESOLUTION")};
  trace.aggregators["gc.color"] = graft::pregel::AggValue{int64_t{3}};
  trace.total_vertices = 1'000'000'000;
  trace.total_edges = 3'000'000'000;
  trace.rng_state = 0x123456789abcdefULL;
  trace.value_after = graft::algos::GCVertexValue{
      -1, graft::algos::GCState::kInSet, 3, 0.42};
  trace.outgoing.emplace_back(
      671, graft::algos::GCMessage{graft::algos::GCMessageType::kInSet, 672,
                                   0.0});
  return trace;
}

void BM_TraceSerialize(benchmark::State& state) {
  auto trace = MakeRepresentativeTrace();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string record = trace.Serialize();
    bytes = record.size();
    benchmark::DoNotOptimize(record);
  }
  state.counters["record_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TraceSerialize);

void BM_TraceDeserialize(benchmark::State& state) {
  std::string record = MakeRepresentativeTrace().Serialize();
  for (auto _ : state) {
    auto trace = graft::debug::VertexTrace<GCTraits>::Deserialize(record);
    GRAFT_CHECK(trace.ok());
    benchmark::DoNotOptimize(trace);
  }
}
BENCHMARK(BM_TraceDeserialize);

void BM_MessageConstraintCheck(benchmark::State& state) {
  graft::debug::ConfigurableDebugConfig<GCTraits> config;
  config.set_message_value_constraint(
      [](const graft::algos::GCMessage& m, VertexId, VertexId, int64_t) {
        return m.r >= 0.0;
      });
  graft::algos::GCMessage message{graft::algos::GCMessageType::kTentative,
                                  671, 0.5};
  const graft::debug::DebugConfig<GCTraits>& base = config;
  for (auto _ : state) {
    bool ok = base.MessageValueConstraint(message, 672, 671, 41);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MessageConstraintCheck);

/// Whole-job floor cost: CC on a 20k-vertex random graph (low diameter, so
/// few supersteps), plain vs instrumented with an empty DebugConfig
/// (nothing captured, no constraints).
void BM_PlainEngineJob(benchmark::State& state) {
  auto graph = graft::graph::MakeUndirected(
      graft::graph::GenerateErdosRenyi(20'000, 100'000, 7));
  for (auto _ : state) {
    auto vertices = graft::pregel::LoadUnweighted<CCTraits>(
        graph, [](VertexId) { return graft::pregel::Int64Value{0}; });
    graft::pregel::Engine<CCTraits>::Options options;
    options.num_workers = 2;
    graft::pregel::Engine<CCTraits> engine(
        options, std::move(vertices),
        graft::algos::MakeConnectedComponentsFactory());
    auto stats = engine.Run();
    GRAFT_CHECK(stats.ok());
    benchmark::DoNotOptimize(stats->supersteps);
  }
}
BENCHMARK(BM_PlainEngineJob)->Unit(benchmark::kMillisecond);

void BM_InstrumentedZeroCaptureJob(benchmark::State& state) {
  auto graph = graft::graph::MakeUndirected(
      graft::graph::GenerateErdosRenyi(20'000, 100'000, 7));
  graft::debug::ConfigurableDebugConfig<CCTraits> config;  // captures nothing
  for (auto _ : state) {
    graft::pregel::JobSpec<CCTraits> spec;
    spec.options.num_workers = 2;
    spec.options.job_id = "ablation-zero";
    spec.vertices = graft::pregel::LoadUnweighted<CCTraits>(
        graph, [](VertexId) { return graft::pregel::Int64Value{0}; });
    spec.computation = graft::algos::MakeConnectedComponentsFactory();
    graft::InMemoryTraceStore store;
    spec.debug_config = &config;
    spec.trace_store = &store;
    auto summary = graft::debug::RunWithGraft(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok());
    benchmark::DoNotOptimize(summary->captures);
  }
}
BENCHMARK(BM_InstrumentedZeroCaptureJob)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
