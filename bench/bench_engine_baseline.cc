// Supplementary: raw BSP-engine throughput (google-benchmark).
//
// Not a paper table, but the denominator of every Figure 7 bar: how fast the
// Giraph-clone substrate moves messages without any debugging. PageRank on
// Erdos-Renyi graphs at two sizes, SSSP, and the superstep hot-path probe:
// multi-worker PageRank on the Table 1 soc-Epinions graph with the
// RunReport phase totals (delivery, barrier wait, compute) exported as
// counters — the numbers the persistent worker pool + combining message
// store are meant to shrink. GRAFT_BENCH_SCALE divides the dataset size
// (default 8; set 1 for the full Table 1 graph).
//
// The debug-service read path (BM_DebugServiceReadPath) rides along: N
// reader threads paging every debug view of M finished jobs through the
// route table and the shared TraceBlockCache, with the cache hit rate and
// a zero-5xx / zero-miss-after-warmup assertion built in.
//
// CI runs the soc-Epinions + DebugService cases and archives the JSON:
//   bench_engine_baseline --benchmark_filter='SocEpinions|DebugService'
//       --benchmark_out=BENCH_engine.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "common/string_util.h"
#include "debug/debug_config.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "io/trace_block_cache.h"
#include "io/trace_store.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "pregel/job.h"
#include "pregel/loader.h"
#include "service/debug_service.h"

namespace {

void BM_PageRank(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto graph = graft::graph::GenerateErdosRenyi(n, n * 8, /*seed=*/3);
  uint64_t messages = 0;
  for (auto _ : state) {
    auto result = graft::algos::RunPageRank(graph, /*iterations=*/5,
                                            /*num_workers=*/2);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageRank)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

// Multi-worker PageRank on the Table 1 soc-Epinions dataset — the
// acceptance probe for the superstep hot path. Besides msgs/s it exports
// the RunReport phase totals so a regression in delivery or barrier wait is
// visible in BENCH_engine.json, not just in end-to-end wall time.
void BM_PageRankSocEpinions(benchmark::State& state) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  const int num_workers = static_cast<int>(state.range(0));
  uint64_t messages = 0;
  double delivery = 0, barrier = 0, compute = 0;
  for (auto _ : state) {
    auto result =
        graft::algos::RunPageRank(*graph, /*iterations=*/10, num_workers);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
    delivery += result->stats.report.TotalDeliveryWallSeconds();
    barrier += result->stats.report.TotalBarrierWaitSeconds();
    compute += result->stats.report.TotalComputeWallSeconds();
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["delivery_s"] = delivery / iters;
  state.counters["barrier_wait_s"] = barrier / iters;
  state.counters["compute_s"] = compute / iters;
  state.counters["vertices"] =
      static_cast<double>(graph->NumVertices());
}
BENCHMARK(BM_PageRankSocEpinions)->Arg(4)->Unit(benchmark::kMillisecond);

// The same job with checkpointing every 2 supersteps: the fault-tolerance
// tax. Exports checkpoint bytes/seconds alongside msgs/s so BENCH_engine.json
// tracks the overhead of the recovery subsystem against the plain run above.
// Runs in both modes — kFull snapshots everything each checkpoint, kDelta
// writes vertex-state-only parts plus the topology/outbox-log streams, so
// BENCH_engine.json carries the full-vs-delta overhead and bytes/superstep
// comparison the ISSUE 7 acceptance bar is judged on.
void RunSocEpinionsCheckpointedBench(benchmark::State& state,
                                     graft::pregel::CheckpointMode mode) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  const int num_workers = static_cast<int>(state.range(0));
  uint64_t messages = 0, ckpt_bytes = 0, ckpts_written = 0;
  uint64_t topology_bytes = 0, log_bytes = 0;
  double ckpt_seconds = 0;
  for (auto _ : state) {
    graft::pregel::JobSpec<graft::algos::PageRankTraits> spec;
    spec.options.num_workers = num_workers;
    spec.options.job_id = "bench-pr-ckpt";
    // No sender-side combiner here (unlike the plain hot-path bench above):
    // a full checkpoint snapshots the pending inbox, so the checkpointed
    // bench runs the standard uncombined PageRank message load to measure
    // that cost rather than optimize it away before it can be observed.
    spec.vertices = graft::pregel::LoadUnweighted<graft::algos::PageRankTraits>(
        *graph,
        [](graft::VertexId) { return graft::pregel::DoubleValue{0.0}; });
    spec.computation = [] {
      return std::make_unique<graft::algos::PageRankComputation>(10);
    };
    spec.master = []() -> std::unique_ptr<graft::pregel::MasterCompute> {
      return std::make_unique<graft::algos::PageRankMaster>(10);
    };
    graft::InMemoryTraceStore ckpt_store;
    spec.checkpoint.interval = 2;
    spec.checkpoint.store = &ckpt_store;
    spec.checkpoint.mode = mode;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    messages += summary->stats.total_messages;
    const graft::obs::RecoveryProfile& rec = summary->stats.report.recovery;
    ckpt_bytes += rec.checkpoint_bytes;
    ckpt_seconds += rec.checkpoint_seconds;
    ckpts_written += rec.checkpoints_written;
    topology_bytes += rec.topology_bytes;
    log_bytes += rec.log_bytes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["checkpoint_bytes"] = static_cast<double>(ckpt_bytes) / iters;
  state.counters["checkpoint_s"] = ckpt_seconds / iters;
  state.counters["checkpoints_written"] =
      static_cast<double>(ckpts_written) / iters;
  state.counters["topology_bytes"] =
      static_cast<double>(topology_bytes) / iters;
  state.counters["log_bytes"] = static_cast<double>(log_bytes) / iters;
  // Per-checkpoint payload: the quantity the delta mode is built to shrink.
  if (ckpts_written > 0) {
    state.counters["bytes_per_checkpoint"] =
        static_cast<double>(ckpt_bytes) / static_cast<double>(ckpts_written);
  }
}
void BM_PageRankSocEpinionsCheckpointed(benchmark::State& state) {
  RunSocEpinionsCheckpointedBench(state,
                                  graft::pregel::CheckpointMode::kFull);
}
BENCHMARK(BM_PageRankSocEpinionsCheckpointed)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankSocEpinionsCheckpointedDelta(benchmark::State& state) {
  RunSocEpinionsCheckpointedBench(state,
                                  graft::pregel::CheckpointMode::kDelta);
}
BENCHMARK(BM_PageRankSocEpinionsCheckpointedDelta)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Builds the canonical JobSpec for the soc-Epinions PageRank probe; the
// sanitizer knobs are the only thing the guard pair below varies.
graft::pregel::JobSpec<graft::algos::PageRankTraits> SocEpinionsSpec(
    const graft::graph::SimpleGraph& graph, int num_workers) {
  graft::pregel::JobSpec<graft::algos::PageRankTraits> spec;
  spec.options.num_workers = num_workers;
  spec.options.job_id = "bench-pr-sanitizer";
  spec.options.combiner = [](const graft::pregel::DoubleValue& a,
                             const graft::pregel::DoubleValue& b) {
    return graft::pregel::DoubleValue{a.value + b.value};
  };
  spec.vertices = graft::pregel::LoadUnweighted<graft::algos::PageRankTraits>(
      graph, [](graft::VertexId) { return graft::pregel::DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<graft::algos::PageRankComputation>(10);
  };
  spec.master = []() -> std::unique_ptr<graft::pregel::MasterCompute> {
    return std::make_unique<graft::algos::PageRankMaster>(10);
  };
  return spec;
}

// Bench guard for DESIGN.md §9: the sanitizer *disabled* (the JobSpec
// default) must cost nothing — no phase stamps, no wrapping, no epoch loads.
// CI compares this against BM_PageRankSocEpinions above in BENCH_engine.json;
// any gap is hot-path contamination by the analysis layer.
void BM_PageRankSocEpinionsSanitizerOff(benchmark::State& state) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  uint64_t messages = 0;
  for (auto _ : state) {
    auto summary = graft::pregel::RunJob(
        SocEpinionsSpec(*graph, static_cast<int>(state.range(0))));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    GRAFT_CHECK(summary->analysis_findings == 0);
    messages += summary->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageRankSocEpinionsSanitizerOff)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The checked-execution tax (EXPERIMENTS.md): same job with every dynamic
// check on and determinism probes on every 64th vertex. Exports the probe
// time so the replay share of the overhead is visible separately.
void BM_PageRankSocEpinionsSanitizerOn(benchmark::State& state) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  uint64_t messages = 0, probes = 0;
  double probe_seconds = 0;
  for (auto _ : state) {
    auto spec = SocEpinionsSpec(*graph, static_cast<int>(state.range(0)));
    spec.sanitizer.enabled = true;
    spec.sanitizer.determinism_sample_rate = 64;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    GRAFT_CHECK(summary->analysis_findings == 0);
    messages += summary->stats.total_messages;
    probes += summary->stats.report.analysis.determinism_probes;
    probe_seconds += summary->stats.report.analysis.probe_seconds;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["probes"] = static_cast<double>(probes) / iters;
  state.counters["probe_s"] = probe_seconds / iters;
}
BENCHMARK(BM_PageRankSocEpinionsSanitizerOn)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Bench guard for DESIGN.md §14: an *unarmed* conditional breakpoint
// (instrumented run, JobSpec.analysis.breakpoint empty) must cost exactly
// one null check per vertex on top of the plain capture path. CI records
// this next to the capture benches in BENCH_engine.json; a gap between this
// and the equivalent no-breakpoint capture run is hot-path contamination by
// the predicate layer.
void RunSocEpinionsBreakpointBench(benchmark::State& state,
                                   const char* breakpoint) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  // No targets, no capture-all: per-vertex work is the exceptions-only
  // floor, so the breakpoint check is the only variable between Off and On.
  static const graft::debug::ConfigurableDebugConfig<
      graft::algos::PageRankTraits>
      config;
  uint64_t messages = 0, hits = 0;
  for (auto _ : state) {
    auto spec = SocEpinionsSpec(*graph, static_cast<int>(state.range(0)));
    spec.options.job_id = "bench-pr-breakpoint";
    graft::InMemoryTraceStore store;
    spec.debug_config = &config;
    spec.trace_store = &store;
    spec.analysis.breakpoint = breakpoint;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    messages += summary->stats.total_messages;
    hits += summary->breakpoint_hits;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["bp_hits"] =
      static_cast<double>(hits) / static_cast<double>(state.iterations());
}

void BM_PageRankSocEpinionsBreakpointOff(benchmark::State& state) {
  RunSocEpinionsBreakpointBench(state, "");
}
BENCHMARK(BM_PageRankSocEpinionsBreakpointOff)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Armed with a predicate that never fires on healthy PageRank (ranks stay
// positive): the cost of evaluating the compiled predicate per vertex,
// without any capture I/O on top.
void BM_PageRankSocEpinionsBreakpointOn(benchmark::State& state) {
  RunSocEpinionsBreakpointBench(state, "value < 0 && superstep > 3");
}
BENCHMARK(BM_PageRankSocEpinionsBreakpointOn)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Bench guard for the ISSUE 5 capture pipeline: the same Table-1 PageRank
// probe with capture-all-active debugging, once through the synchronous sink
// and once through the spooling (async) sink. CI compares the pair in
// BENCH_engine.json: the async run's overhead_s (serialize + critical-path
// append) must drop versus sync, since store writes move to the background
// flusher (reported separately as flush_s).
void RunSocEpinionsCaptureBench(benchmark::State& state, bool async) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  static const graft::debug::ConfigurableDebugConfig<
      graft::algos::PageRankTraits>
      config = [] {
        graft::debug::ConfigurableDebugConfig<graft::algos::PageRankTraits> c;
        c.set_capture_all_active(true);
        return c;
      }();
  uint64_t messages = 0, captures = 0, trace_bytes = 0, batches = 0;
  uint64_t backpressure = 0;
  double overhead = 0, serialize = 0, append = 0, flush = 0;
  for (auto _ : state) {
    auto spec = SocEpinionsSpec(*graph, static_cast<int>(state.range(0)));
    spec.options.job_id =
        async ? "bench-pr-capture-async" : "bench-pr-capture-sync";
    graft::InMemoryTraceStore store;
    spec.debug_config = &config;
    spec.trace_store = &store;
    spec.capture_io.async = async;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    messages += summary->stats.total_messages;
    const graft::obs::CaptureProfile& capture = summary->stats.report.capture;
    GRAFT_CHECK(capture.async_sink == async);
    captures += capture.vertex_captures;
    trace_bytes += capture.trace_bytes;
    batches += capture.spool_batches;
    backpressure += capture.spool_backpressure_waits;
    overhead += capture.OverheadSeconds();
    serialize += capture.serialize_seconds;
    append += capture.append_seconds;
    flush += capture.flush_seconds;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["captures"] = static_cast<double>(captures) / iters;
  state.counters["trace_bytes"] = static_cast<double>(trace_bytes) / iters;
  state.counters["overhead_s"] = overhead / iters;
  state.counters["serialize_s"] = serialize / iters;
  state.counters["append_s"] = append / iters;
  state.counters["flush_s"] = flush / iters;
  state.counters["spool_batches"] = static_cast<double>(batches) / iters;
  state.counters["spool_backpressure_waits"] =
      static_cast<double>(backpressure) / iters;
}

void BM_PageRankSocEpinionsCaptureSync(benchmark::State& state) {
  RunSocEpinionsCaptureBench(state, /*async=*/false);
}
BENCHMARK(BM_PageRankSocEpinionsCaptureSync)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankSocEpinionsCaptureAsync(benchmark::State& state) {
  RunSocEpinionsCaptureBench(state, /*async=*/true);
}
BENCHMARK(BM_PageRankSocEpinionsCaptureAsync)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Bench guard for the ISSUE 6 telemetry plane (DESIGN.md §11): the event
// journal *disabled* (the JobSpec default) must cost nothing — every engine
// emission site is one null-pointer test. CI compares this pair in
// BENCH_engine.json; the On run also exports the journal volume so the
// per-event cost is visible, not just end-to-end wall time.
void RunSocEpinionsJournalBench(benchmark::State& state, bool journal) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  uint64_t messages = 0, events = 0, dropped = 0;
  for (auto _ : state) {
    auto spec = SocEpinionsSpec(*graph, static_cast<int>(state.range(0)));
    spec.options.job_id =
        journal ? "bench-pr-journal-on" : "bench-pr-journal-off";
    graft::obs::MetricsRegistry metrics;
    spec.options.metrics = &metrics;
    spec.telemetry.journal = journal;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    messages += summary->stats.total_messages;
    events += metrics.GetCounter("journal.events_total")->value();
    dropped += metrics.GetCounter("journal.events_dropped_total")->value();
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["journal_events"] = static_cast<double>(events) / iters;
  state.counters["journal_dropped"] = static_cast<double>(dropped) / iters;
}

void BM_PageRankSocEpinionsJournalOff(benchmark::State& state) {
  RunSocEpinionsJournalBench(state, /*journal=*/false);
}
BENCHMARK(BM_PageRankSocEpinionsJournalOff)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankSocEpinionsJournalOn(benchmark::State& state) {
  RunSocEpinionsJournalBench(state, /*journal=*/true);
}
BENCHMARK(BM_PageRankSocEpinionsJournalOn)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Sssp(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto graph = graft::graph::GenerateErdosRenyi(n, n * 8, /*seed=*/5);
  graft::graph::AssignRandomWeights(&graph, 1.0, 10.0, 11, false);
  uint64_t messages = 0;
  for (auto _ : state) {
    auto result = graft::algos::RunSssp(graph, graph.IdAt(0), 2);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
}
BENCHMARK(BM_Sssp)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

// -- debug-service read path ------------------------------------------------
//
// The ISSUE 8 acceptance probe: M jobs run once through the DebugService
// worker pool, then state.range(0) reader threads page every debug view
// (supersteps, vertices pages, vertex point lookups, master, violations,
// /jobs listing) through the TelemetryServer route table — Handle() calls,
// no sockets, so the number is the render + cache path, not loopback TCP.
// All readers share one TraceBlockCache; the warmup pass decodes every
// block once, and the measured phase asserts zero further cache misses
// (point lookups never rescan a trace file) and zero 5xx responses.

struct DebugServiceBenchEnv {
  graft::InMemoryTraceStore store;
  graft::obs::JobRegistry registry;
  graft::obs::MetricsRegistry metrics;
  graft::TraceBlockCache cache;
  std::unique_ptr<graft::service::DebugService> service;
  std::unique_ptr<graft::obs::TelemetryServer> server;
  std::vector<std::string> targets;  // warmed request targets

  static DebugServiceBenchEnv& Get() {
    static DebugServiceBenchEnv* env = [] {
      auto* e = new DebugServiceBenchEnv();
      graft::service::DebugServiceOptions options;
      options.store = &e->store;
      options.registry = &e->registry;
      options.metrics = &e->metrics;
      options.cache = &e->cache;
      options.worker_threads = 2;
      e->service = std::make_unique<graft::service::DebugService>(options);
      graft::obs::TelemetryServerOptions server_options;
      server_options.metrics = &e->metrics;
      server_options.registry = &e->registry;
      e->server = graft::obs::TelemetryServer::Create(server_options);
      e->service->RegisterRoutes(e->server.get());

      // Four jobs across all three catalog algos — the acceptance shape
      // (32 readers x 4 jobs).
      const char* algos[] = {"pagerank", "cc", "sssp", "pagerank"};
      std::vector<std::string> jobs;
      for (int i = 0; i < 4; ++i) {
        const std::string body = graft::StrFormat(
            "{\"algo\":\"%s\",\"job_id\":\"bench-read-%d\","
            "\"graph\":{\"generator\":\"erdos-renyi\",\"vertices\":300,"
            "\"edges\":1200,\"seed\":%d},"
            "\"params\":{\"iterations\":4},\"journal\":false}",
            algos[i], i, 7 + i);
        auto accepted = e->service->Submit(body);
        GRAFT_CHECK(accepted.ok()) << accepted.status();
        jobs.push_back(accepted->job_id);
      }
      e->service->DrainJobs();
      for (const auto& job : jobs) {
        auto entry = e->registry.Find(job);
        GRAFT_CHECK(entry != nullptr &&
                    entry->state() == graft::obs::JobState::kDone)
            << "bench job did not finish: " << job;
      }

      e->targets.push_back("/jobs");
      e->targets.push_back("/jobs?status=done");
      for (const auto& job : jobs) {
        const std::string base = "/jobs/" + job + "/debug";
        e->targets.push_back(base + "/supersteps");
        e->targets.push_back(base + "/vertices?superstep=1&limit=50");
        e->targets.push_back(base +
                             "/vertices?superstep=1&offset=50&limit=50");
        e->targets.push_back(base + "/vertices?superstep=2&search=1");
        e->targets.push_back(base + "/master?superstep=1");
        e->targets.push_back(base + "/violations?superstep=1");
        for (int vid = 0; vid < 8; ++vid) {
          e->targets.push_back(
              graft::StrFormat("%s/vertex/%d?superstep=1", base.c_str(), vid));
        }
      }
      // Warmup: decode every block once so the measured phase is the
      // steady-state cache-hit path.
      for (const auto& target : e->targets) {
        auto response = e->server->Handle("GET", target);
        GRAFT_CHECK(response.status < 500)
            << "warmup 5xx on " << target << ": " << response.body;
      }
      return e;
    }();
    return *env;
  }
};

void BM_DebugServiceReadPath(benchmark::State& state) {
  auto& env = DebugServiceBenchEnv::Get();
  const int readers = static_cast<int>(state.range(0));
  constexpr int kRequestsPerReader = 64;
  const auto warm = env.cache.stats();
  uint64_t requests = 0;
  std::atomic<uint64_t> server_errors{0};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        for (int i = 0; i < kRequestsPerReader; ++i) {
          const auto& target =
              env.targets[static_cast<size_t>(r + i * 7) %
                          env.targets.size()];
          auto response = env.server->Handle("GET", target);
          if (response.status >= 500) {
            server_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    requests += static_cast<uint64_t>(readers) * kRequestsPerReader;
  }
  const auto stats = env.cache.stats();
  // Acceptance: zero 5xx under concurrent readers, and a warm cache serves
  // every point lookup without another store rescan.
  GRAFT_CHECK(server_errors.load() == 0)
      << server_errors.load() << " 5xx responses";
  GRAFT_CHECK(stats.misses == warm.misses)
      << "cache misses after warmup: " << (stats.misses - warm.misses);
  state.SetItemsProcessed(static_cast<int64_t>(requests));
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] = stats.HitRate();
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_misses"] = static_cast<double>(stats.misses);
  state.counters["cache_bytes"] = static_cast<double>(stats.bytes);
}
BENCHMARK(BM_DebugServiceReadPath)
    ->Arg(4)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
