// Supplementary: raw BSP-engine throughput (google-benchmark).
//
// Not a paper table, but the denominator of every Figure 7 bar: how fast the
// Giraph-clone substrate moves messages without any debugging. PageRank on
// Erdos-Renyi graphs at two sizes, SSSP, and the superstep hot-path probe:
// multi-worker PageRank on the Table 1 soc-Epinions graph with the
// RunReport phase totals (delivery, barrier wait, compute) exported as
// counters — the numbers the persistent worker pool + combining message
// store are meant to shrink. GRAFT_BENCH_SCALE divides the dataset size
// (default 8; set 1 for the full Table 1 graph).
//
// CI runs the soc-Epinions case alone and archives the JSON:
//   bench_engine_baseline --benchmark_filter=SocEpinions
//       --benchmark_out=BENCH_engine.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "debug/debug_config.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/job.h"
#include "pregel/loader.h"

namespace {

void BM_PageRank(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto graph = graft::graph::GenerateErdosRenyi(n, n * 8, /*seed=*/3);
  uint64_t messages = 0;
  for (auto _ : state) {
    auto result = graft::algos::RunPageRank(graph, /*iterations=*/5,
                                            /*num_workers=*/2);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageRank)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

// Multi-worker PageRank on the Table 1 soc-Epinions dataset — the
// acceptance probe for the superstep hot path. Besides msgs/s it exports
// the RunReport phase totals so a regression in delivery or barrier wait is
// visible in BENCH_engine.json, not just in end-to-end wall time.
void BM_PageRankSocEpinions(benchmark::State& state) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  const int num_workers = static_cast<int>(state.range(0));
  uint64_t messages = 0;
  double delivery = 0, barrier = 0, compute = 0;
  for (auto _ : state) {
    auto result =
        graft::algos::RunPageRank(*graph, /*iterations=*/10, num_workers);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
    delivery += result->stats.report.TotalDeliveryWallSeconds();
    barrier += result->stats.report.TotalBarrierWaitSeconds();
    compute += result->stats.report.TotalComputeWallSeconds();
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["delivery_s"] = delivery / iters;
  state.counters["barrier_wait_s"] = barrier / iters;
  state.counters["compute_s"] = compute / iters;
  state.counters["vertices"] =
      static_cast<double>(graph->NumVertices());
}
BENCHMARK(BM_PageRankSocEpinions)->Arg(4)->Unit(benchmark::kMillisecond);

// The same job with checkpointing every 2 supersteps: the fault-tolerance
// tax. Exports checkpoint bytes/seconds alongside msgs/s so BENCH_engine.json
// tracks the overhead of the recovery subsystem against the plain run above.
// Runs in both modes — kFull snapshots everything each checkpoint, kDelta
// writes vertex-state-only parts plus the topology/outbox-log streams, so
// BENCH_engine.json carries the full-vs-delta overhead and bytes/superstep
// comparison the ISSUE 7 acceptance bar is judged on.
void RunSocEpinionsCheckpointedBench(benchmark::State& state,
                                     graft::pregel::CheckpointMode mode) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  const int num_workers = static_cast<int>(state.range(0));
  uint64_t messages = 0, ckpt_bytes = 0, ckpts_written = 0;
  uint64_t topology_bytes = 0, log_bytes = 0;
  double ckpt_seconds = 0;
  for (auto _ : state) {
    graft::pregel::JobSpec<graft::algos::PageRankTraits> spec;
    spec.options.num_workers = num_workers;
    spec.options.job_id = "bench-pr-ckpt";
    // No sender-side combiner here (unlike the plain hot-path bench above):
    // a full checkpoint snapshots the pending inbox, so the checkpointed
    // bench runs the standard uncombined PageRank message load to measure
    // that cost rather than optimize it away before it can be observed.
    spec.vertices = graft::pregel::LoadUnweighted<graft::algos::PageRankTraits>(
        *graph,
        [](graft::VertexId) { return graft::pregel::DoubleValue{0.0}; });
    spec.computation = [] {
      return std::make_unique<graft::algos::PageRankComputation>(10);
    };
    spec.master = []() -> std::unique_ptr<graft::pregel::MasterCompute> {
      return std::make_unique<graft::algos::PageRankMaster>(10);
    };
    graft::InMemoryTraceStore ckpt_store;
    spec.checkpoint.interval = 2;
    spec.checkpoint.store = &ckpt_store;
    spec.checkpoint.mode = mode;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    messages += summary->stats.total_messages;
    const graft::obs::RecoveryProfile& rec = summary->stats.report.recovery;
    ckpt_bytes += rec.checkpoint_bytes;
    ckpt_seconds += rec.checkpoint_seconds;
    ckpts_written += rec.checkpoints_written;
    topology_bytes += rec.topology_bytes;
    log_bytes += rec.log_bytes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["checkpoint_bytes"] = static_cast<double>(ckpt_bytes) / iters;
  state.counters["checkpoint_s"] = ckpt_seconds / iters;
  state.counters["checkpoints_written"] =
      static_cast<double>(ckpts_written) / iters;
  state.counters["topology_bytes"] =
      static_cast<double>(topology_bytes) / iters;
  state.counters["log_bytes"] = static_cast<double>(log_bytes) / iters;
  // Per-checkpoint payload: the quantity the delta mode is built to shrink.
  if (ckpts_written > 0) {
    state.counters["bytes_per_checkpoint"] =
        static_cast<double>(ckpt_bytes) / static_cast<double>(ckpts_written);
  }
}
void BM_PageRankSocEpinionsCheckpointed(benchmark::State& state) {
  RunSocEpinionsCheckpointedBench(state,
                                  graft::pregel::CheckpointMode::kFull);
}
BENCHMARK(BM_PageRankSocEpinionsCheckpointed)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankSocEpinionsCheckpointedDelta(benchmark::State& state) {
  RunSocEpinionsCheckpointedBench(state,
                                  graft::pregel::CheckpointMode::kDelta);
}
BENCHMARK(BM_PageRankSocEpinionsCheckpointedDelta)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Builds the canonical JobSpec for the soc-Epinions PageRank probe; the
// sanitizer knobs are the only thing the guard pair below varies.
graft::pregel::JobSpec<graft::algos::PageRankTraits> SocEpinionsSpec(
    const graft::graph::SimpleGraph& graph, int num_workers) {
  graft::pregel::JobSpec<graft::algos::PageRankTraits> spec;
  spec.options.num_workers = num_workers;
  spec.options.job_id = "bench-pr-sanitizer";
  spec.options.combiner = [](const graft::pregel::DoubleValue& a,
                             const graft::pregel::DoubleValue& b) {
    return graft::pregel::DoubleValue{a.value + b.value};
  };
  spec.vertices = graft::pregel::LoadUnweighted<graft::algos::PageRankTraits>(
      graph, [](graft::VertexId) { return graft::pregel::DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<graft::algos::PageRankComputation>(10);
  };
  spec.master = []() -> std::unique_ptr<graft::pregel::MasterCompute> {
    return std::make_unique<graft::algos::PageRankMaster>(10);
  };
  return spec;
}

// Bench guard for DESIGN.md §9: the sanitizer *disabled* (the JobSpec
// default) must cost nothing — no phase stamps, no wrapping, no epoch loads.
// CI compares this against BM_PageRankSocEpinions above in BENCH_engine.json;
// any gap is hot-path contamination by the analysis layer.
void BM_PageRankSocEpinionsSanitizerOff(benchmark::State& state) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  uint64_t messages = 0;
  for (auto _ : state) {
    auto summary = graft::pregel::RunJob(
        SocEpinionsSpec(*graph, static_cast<int>(state.range(0))));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    GRAFT_CHECK(summary->analysis_findings == 0);
    messages += summary->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageRankSocEpinionsSanitizerOff)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The checked-execution tax (EXPERIMENTS.md): same job with every dynamic
// check on and determinism probes on every 64th vertex. Exports the probe
// time so the replay share of the overhead is visible separately.
void BM_PageRankSocEpinionsSanitizerOn(benchmark::State& state) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  uint64_t messages = 0, probes = 0;
  double probe_seconds = 0;
  for (auto _ : state) {
    auto spec = SocEpinionsSpec(*graph, static_cast<int>(state.range(0)));
    spec.sanitizer.enabled = true;
    spec.sanitizer.determinism_sample_rate = 64;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    GRAFT_CHECK(summary->analysis_findings == 0);
    messages += summary->stats.total_messages;
    probes += summary->stats.report.analysis.determinism_probes;
    probe_seconds += summary->stats.report.analysis.probe_seconds;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["probes"] = static_cast<double>(probes) / iters;
  state.counters["probe_s"] = probe_seconds / iters;
}
BENCHMARK(BM_PageRankSocEpinionsSanitizerOn)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Bench guard for the ISSUE 5 capture pipeline: the same Table-1 PageRank
// probe with capture-all-active debugging, once through the synchronous sink
// and once through the spooling (async) sink. CI compares the pair in
// BENCH_engine.json: the async run's overhead_s (serialize + critical-path
// append) must drop versus sync, since store writes move to the background
// flusher (reported separately as flush_s).
void RunSocEpinionsCaptureBench(benchmark::State& state, bool async) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  static const graft::debug::ConfigurableDebugConfig<
      graft::algos::PageRankTraits>
      config = [] {
        graft::debug::ConfigurableDebugConfig<graft::algos::PageRankTraits> c;
        c.set_capture_all_active(true);
        return c;
      }();
  uint64_t messages = 0, captures = 0, trace_bytes = 0, batches = 0;
  uint64_t backpressure = 0;
  double overhead = 0, serialize = 0, append = 0, flush = 0;
  for (auto _ : state) {
    auto spec = SocEpinionsSpec(*graph, static_cast<int>(state.range(0)));
    spec.options.job_id =
        async ? "bench-pr-capture-async" : "bench-pr-capture-sync";
    graft::InMemoryTraceStore store;
    spec.debug_config = &config;
    spec.trace_store = &store;
    spec.capture_io.async = async;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    messages += summary->stats.total_messages;
    const graft::obs::CaptureProfile& capture = summary->stats.report.capture;
    GRAFT_CHECK(capture.async_sink == async);
    captures += capture.vertex_captures;
    trace_bytes += capture.trace_bytes;
    batches += capture.spool_batches;
    backpressure += capture.spool_backpressure_waits;
    overhead += capture.OverheadSeconds();
    serialize += capture.serialize_seconds;
    append += capture.append_seconds;
    flush += capture.flush_seconds;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["captures"] = static_cast<double>(captures) / iters;
  state.counters["trace_bytes"] = static_cast<double>(trace_bytes) / iters;
  state.counters["overhead_s"] = overhead / iters;
  state.counters["serialize_s"] = serialize / iters;
  state.counters["append_s"] = append / iters;
  state.counters["flush_s"] = flush / iters;
  state.counters["spool_batches"] = static_cast<double>(batches) / iters;
  state.counters["spool_backpressure_waits"] =
      static_cast<double>(backpressure) / iters;
}

void BM_PageRankSocEpinionsCaptureSync(benchmark::State& state) {
  RunSocEpinionsCaptureBench(state, /*async=*/false);
}
BENCHMARK(BM_PageRankSocEpinionsCaptureSync)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankSocEpinionsCaptureAsync(benchmark::State& state) {
  RunSocEpinionsCaptureBench(state, /*async=*/true);
}
BENCHMARK(BM_PageRankSocEpinionsCaptureAsync)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Bench guard for the ISSUE 6 telemetry plane (DESIGN.md §11): the event
// journal *disabled* (the JobSpec default) must cost nothing — every engine
// emission site is one null-pointer test. CI compares this pair in
// BENCH_engine.json; the On run also exports the journal volume so the
// per-event cost is visible, not just end-to-end wall time.
void RunSocEpinionsJournalBench(benchmark::State& state, bool journal) {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  graft::graph::DatasetOptions options;
  options.scale_denominator = (env != nullptr && std::atoll(env) > 0)
                                  ? static_cast<uint64_t>(std::atoll(env))
                                  : 8;
  auto graph = graft::graph::MakeDataset("soc-Epinions", options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  uint64_t messages = 0, events = 0, dropped = 0;
  for (auto _ : state) {
    auto spec = SocEpinionsSpec(*graph, static_cast<int>(state.range(0)));
    spec.options.job_id =
        journal ? "bench-pr-journal-on" : "bench-pr-journal-off";
    graft::obs::MetricsRegistry metrics;
    spec.options.metrics = &metrics;
    spec.telemetry.journal = journal;
    auto summary = graft::pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok()) << summary.status();
    GRAFT_CHECK(summary->job_status.ok()) << summary->job_status;
    messages += summary->stats.total_messages;
    events += metrics.GetCounter("journal.events_total")->value();
    dropped += metrics.GetCounter("journal.events_dropped_total")->value();
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["journal_events"] = static_cast<double>(events) / iters;
  state.counters["journal_dropped"] = static_cast<double>(dropped) / iters;
}

void BM_PageRankSocEpinionsJournalOff(benchmark::State& state) {
  RunSocEpinionsJournalBench(state, /*journal=*/false);
}
BENCHMARK(BM_PageRankSocEpinionsJournalOff)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankSocEpinionsJournalOn(benchmark::State& state) {
  RunSocEpinionsJournalBench(state, /*journal=*/true);
}
BENCHMARK(BM_PageRankSocEpinionsJournalOn)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Sssp(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto graph = graft::graph::GenerateErdosRenyi(n, n * 8, /*seed=*/5);
  graft::graph::AssignRandomWeights(&graph, 1.0, 10.0, 11, false);
  uint64_t messages = 0;
  for (auto _ : state) {
    auto result = graft::algos::RunSssp(graph, graph.IdAt(0), 2);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
}
BENCHMARK(BM_Sssp)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
