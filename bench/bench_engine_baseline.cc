// Supplementary: raw BSP-engine throughput (google-benchmark).
//
// Not a paper table, but the denominator of every Figure 7 bar: how fast the
// Giraph-clone substrate moves messages without any debugging. PageRank on
// Erdos-Renyi graphs at two sizes, plus SSSP, reporting messages/second.

#include <benchmark/benchmark.h>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "graph/generators.h"

namespace {

void BM_PageRank(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto graph = graft::graph::GenerateErdosRenyi(n, n * 8, /*seed=*/3);
  uint64_t messages = 0;
  for (auto _ : state) {
    auto result = graft::algos::RunPageRank(graph, /*iterations=*/5,
                                            /*num_workers=*/2);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageRank)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

void BM_Sssp(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  auto graph = graft::graph::GenerateErdosRenyi(n, n * 8, /*seed=*/5);
  graft::graph::AssignRandomWeights(&graph, 1.0, 10.0, 11, false);
  uint64_t messages = 0;
  for (auto _ : state) {
    auto result = graft::algos::RunSssp(graph, graph.IdAt(0), 2);
    GRAFT_CHECK(result.ok()) << result.status();
    messages += result->stats.total_messages;
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
}
BENCHMARK(BM_Sssp)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
