// Figure 7 — "Graft's performance overhead" (§5).
//
// For each (algorithm, dataset) cluster, runs the job without Graft
// ("no-debug") and under each of the five Table 3 DebugConfig
// configurations, printing the normalized mean runtime (no-debug = 1.00),
// the standard deviation across repetitions (the paper's error bars), and
// the total number of vertex captures (the number printed on each bar).
//
// Datasets are the Table 2 graphs scaled to one machine (GRAFT_BENCH_SCALE
// multiplies the per-dataset default denominator; GRAFT_BENCH_REPS sets
// repetitions, default 3, paper used 5).
//
// Timing comes from the engine's own run report (JobStats::report), not an
// external stopwatch, so the numbers here are exactly what the obs layer
// exports; the "overhead" column is the measured capture cost
// (serialize + trace-store append seconds) from the same report.
//
// Paper shape targets: DC-sp <= ~1.16, DC-sp+nbr <= ~1.17, DC-msg/DC-vv
// <= ~1.20, DC-full <= ~1.29; captures between 1 and ~1.2M.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "algos/graph_coloring.h"
#include "algos/max_weight_matching.h"
#include "algos/random_walk.h"
#include "debug/debug_runner.h"
#include "debug/views/text_table.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

namespace {

using graft::VertexId;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && std::atoll(v) > 0) ? std::atoll(v) : fallback;
}

struct Sample {
  double mean_seconds = 0;
  double stdev_seconds = 0;
  double overhead_seconds = 0;  // mean capture overhead from the run report
  uint64_t captures = 0;
  uint64_t violations = 0;
  uint64_t trace_bytes = 0;
};

struct Row {
  std::string config;
  Sample sample;
};

/// The five Table 3 configurations, instantiated per algorithm.
enum class DC { kNoDebug, kSp, kSpNbr, kMsg, kVv, kFull };
const char* DCName(DC dc) {
  switch (dc) {
    case DC::kNoDebug: return "no-debug";
    case DC::kSp:      return "DC-sp";
    case DC::kSpNbr:   return "DC-sp+nbr";
    case DC::kMsg:     return "DC-msg";
    case DC::kVv:      return "DC-vv";
    case DC::kFull:    return "DC-full";
  }
  return "?";
}

/// Per-algorithm pieces the generic harness needs.
template <typename Traits>
struct ClusterBinding {
  std::string name;
  std::function<std::vector<graft::pregel::Vertex<Traits>>()> load;
  graft::pregel::ComputationFactory<Traits> factory;
  graft::pregel::MasterFactory master;  // may be nullptr
  typename graft::pregel::Engine<Traits>::Options options;
  /// "Message/vertex values are non-negative" for this algorithm's types.
  typename graft::debug::ConfigurableDebugConfig<Traits>::MessagePredicate
      message_nonnegative;
  typename graft::debug::ConfigurableDebugConfig<Traits>::VertexValuePredicate
      vertex_value_nonnegative;
  /// Ids present in every dataset, used for DC-sp / DC-sp+nbr / DC-full.
  std::vector<VertexId> specified5;
  std::vector<VertexId> specified10;
};

template <typename Traits>
graft::debug::ConfigurableDebugConfig<Traits> MakeConfig(
    DC dc, const ClusterBinding<Traits>& binding) {
  graft::debug::ConfigurableDebugConfig<Traits> config;
  switch (dc) {
    case DC::kNoDebug:
      break;
    case DC::kSp:  // "Captures 5 specified vertices"
      config.set_vertices(binding.specified5);
      break;
    case DC::kSpNbr:  // "...and their neighbors"
      config.set_vertices(binding.specified5).set_capture_neighbors(true);
      break;
    case DC::kMsg:  // "message values are non-negative"
      config.set_message_value_constraint(binding.message_nonnegative);
      break;
    case DC::kVv:  // "vertex values are non-negative"
      config.set_vertex_value_constraint(binding.vertex_value_nonnegative);
      break;
    case DC::kFull:  // 10 specified + neighbors + both constraints
      config.set_vertices(binding.specified10)
          .set_capture_neighbors(true)
          .set_message_value_constraint(binding.message_nonnegative)
          .set_vertex_value_constraint(binding.vertex_value_nonnegative);
      break;
  }
  return config;
}

template <typename Traits>
Sample RunConfig(DC dc, const ClusterBinding<Traits>& binding, int reps) {
  std::vector<double> seconds;
  Sample sample;
  double overhead_sum = 0;
  for (int r = 0; r < reps; ++r) {
    auto vertices = binding.load();
    if (dc == DC::kNoDebug) {
      // Plain engine, no instrumentation at all; timing from its report.
      graft::pregel::Engine<Traits> engine(binding.options,
                                           std::move(vertices),
                                           binding.factory, binding.master);
      auto stats = engine.Run();
      GRAFT_CHECK(stats.ok()) << stats.status();
      seconds.push_back(stats->report.total_seconds);
    } else {
      auto config = MakeConfig(dc, binding);
      graft::InMemoryTraceStore store;
      graft::pregel::JobSpec<Traits> spec;
      spec.options = binding.options;
      spec.vertices = std::move(vertices);
      spec.computation = binding.factory;
      spec.master = binding.master;
      spec.debug_config = &config;
      spec.trace_store = &store;
      // GRAFT_CAPTURE_ASYNC=1 re-measures every bar with the spooling sink
      // (ISSUE 5): trace bytes are identical, only the critical-path cost
      // moves.
      spec.capture_io.async = EnvInt("GRAFT_CAPTURE_ASYNC", 0) > 0;
      auto summary_or = graft::debug::RunWithGraft(std::move(spec));
      GRAFT_CHECK(summary_or.ok()) << summary_or.status();
      const graft::debug::DebugRunSummary& summary = *summary_or;
      GRAFT_CHECK(summary.job_status.ok()) << summary.job_status;
      sample.captures = summary.captures;
      sample.violations = summary.violations;
      sample.trace_bytes = summary.trace_bytes;
      seconds.push_back(summary.stats.report.total_seconds);
      overhead_sum += summary.stats.report.capture.OverheadSeconds();
    }
  }
  sample.overhead_seconds = overhead_sum / reps;
  double sum = 0;
  for (double s : seconds) sum += s;
  sample.mean_seconds = sum / seconds.size();
  double var = 0;
  for (double s : seconds) {
    var += (s - sample.mean_seconds) * (s - sample.mean_seconds);
  }
  sample.stdev_seconds =
      seconds.size() > 1 ? std::sqrt(var / (seconds.size() - 1)) : 0.0;
  return sample;
}

std::vector<std::string> g_csv;

template <typename Traits>
void RunCluster(const ClusterBinding<Traits>& binding, int reps) {
  std::printf("--- cluster %s ---\n", binding.name.c_str());
  std::vector<Row> rows;
  for (DC dc : {DC::kNoDebug, DC::kSp, DC::kSpNbr, DC::kMsg, DC::kVv,
                DC::kFull}) {
    rows.push_back(Row{DCName(dc), RunConfig(dc, binding, reps)});
    std::printf("  %-9s done (%.3fs mean)\n", DCName(dc),
                rows.back().sample.mean_seconds);
  }
  double baseline = rows.front().sample.mean_seconds;
  graft::debug::TextTable table({"config", "normalized", "stdev",
                                 "overhead_ms", "captures", "violations",
                                 "trace bytes"});
  for (const Row& row : rows) {
    double norm = row.sample.mean_seconds / baseline;
    table.AddRow({row.config, graft::StrFormat("%.3f", norm),
                  graft::StrFormat("%.3f", row.sample.stdev_seconds / baseline),
                  graft::StrFormat("%.3f", row.sample.overhead_seconds * 1e3),
                  std::to_string(row.sample.captures),
                  std::to_string(row.sample.violations),
                  graft::HumanBytes(row.sample.trace_bytes)});
    g_csv.push_back(graft::StrFormat(
        "%s,%s,%.4f,%.4f,%.6f,%llu,%llu,%llu", binding.name.c_str(),
        row.config.c_str(), norm, row.sample.stdev_seconds / baseline,
        row.sample.overhead_seconds,
        static_cast<unsigned long long>(row.sample.captures),
        static_cast<unsigned long long>(row.sample.violations),
        static_cast<unsigned long long>(row.sample.trace_bytes)));
  }
  std::printf("%s\n", table.Render().c_str());
}

graft::graph::SimpleGraph LoadScaled(const std::string& name, uint64_t denom,
                                     bool undirected, uint64_t extra_scale) {
  graft::graph::DatasetOptions options;
  options.scale_denominator = denom * extra_scale;
  options.undirected = undirected;
  auto graph = graft::graph::MakeDataset(name, options);
  GRAFT_CHECK(graph.ok()) << graph.status();
  std::printf("dataset %s at scale 1/%llu: %zu vertices, %llu directed "
              "edges\n",
              name.c_str(),
              static_cast<unsigned long long>(options.scale_denominator),
              graph->NumVertices(),
              static_cast<unsigned long long>(graph->NumDirectedEdges()));
  return std::move(graph).value();
}

std::vector<VertexId> PickIds(const graft::graph::SimpleGraph& g, int n) {
  // Deterministic spread across the id space.
  std::vector<VertexId> ids;
  size_t stride = std::max<size_t>(1, g.NumVertices() / (n + 1));
  for (int i = 1; i <= n; ++i) ids.push_back(g.IdAt((i * stride) % g.NumVertices()));
  return ids;
}

}  // namespace

int main() {
  const int reps = static_cast<int>(EnvInt("GRAFT_BENCH_REPS", 3));
  const uint64_t extra = static_cast<uint64_t>(EnvInt("GRAFT_BENCH_SCALE", 1));
  std::printf("== Figure 7: Graft's performance overhead ==\n");
  std::printf("(repetitions per bar: %d; Table 2 datasets scaled to one "
              "machine, GRAFT_BENCH_SCALE=%llu)\n\n",
              reps, static_cast<unsigned long long>(extra));

  // --- GC on bipartite-2B-6B (scaled) ---
  {
    using Traits = graft::algos::GCTraits;
    auto graph = LoadScaled("bipartite-2B-6B", 16384, false, extra);
    ClusterBinding<Traits> binding;
    binding.name = "GC-bip";
    binding.load = [&graph] {
      return graft::algos::LoadGraphColoringVertices(graph);
    };
    binding.factory = graft::algos::MakeGraphColoringFactory(false);
    binding.master = graft::algos::MakeGraphColoringMasterFactory();
    binding.options.num_workers = 2;
    binding.options.job_id = "fig7-gc";
    binding.message_nonnegative =
        [](const graft::algos::GCMessage& m, VertexId, VertexId, int64_t) {
          return m.r >= 0.0;
        };
    binding.vertex_value_nonnegative =
        [](const graft::algos::GCVertexValue& v, VertexId, int64_t) {
          return v.color >= -1;
        };
    binding.specified5 = PickIds(graph, 5);
    binding.specified10 = PickIds(graph, 10);
    RunCluster(binding, reps);
  }

  // --- RW (short counters, §4.2 version) on sk-2005 and twitter ---
  for (const auto& [dataset, cluster, denom] :
       {std::tuple<const char*, const char*, uint64_t>{"sk-2005", "RW-sk",
                                                       1024},
        std::tuple<const char*, const char*, uint64_t>{"twitter", "RW-tw",
                                                       512}}) {
    using Traits = graft::algos::RWShortTraits;
    auto graph = LoadScaled(dataset, denom, false, extra);
    ClusterBinding<Traits> binding;
    binding.name = cluster;
    binding.load = [&graph] {
      return graft::pregel::LoadUnweighted<Traits>(
          graph, [](VertexId) { return graft::pregel::Int64Value{0}; });
    };
    binding.factory =
        graft::algos::MakeRandomWalkFactory<Traits>(/*num_steps=*/10,
                                                    /*initial_walkers=*/100);
    binding.master = nullptr;
    binding.options.num_workers = 2;
    binding.options.job_id = std::string("fig7-") + cluster;
    binding.message_nonnegative =
        [](const graft::pregel::ShortValue& m, VertexId, VertexId, int64_t) {
          return m.value >= 0;
        };
    binding.vertex_value_nonnegative =
        [](const graft::pregel::Int64Value& v, VertexId, int64_t) {
          return v.value >= 0;
        };
    binding.specified5 = PickIds(graph, 5);
    binding.specified10 = PickIds(graph, 10);
    RunCluster(binding, reps);
  }

  // --- MWM on twitter (undirected, weighted) ---
  {
    using Traits = graft::algos::MWMTraits;
    auto graph = LoadScaled("twitter", 1024, true, extra);
    graft::graph::AssignRandomWeights(&graph, 1.0, 100.0, 99, true);
    ClusterBinding<Traits> binding;
    binding.name = "MWM-tw";
    binding.load = [&graph] {
      return graft::algos::LoadMatchingVertices(graph);
    };
    binding.factory = graft::algos::MakeMaxWeightMatchingFactory();
    binding.master = nullptr;
    binding.options.num_workers = 2;
    binding.options.job_id = "fig7-mwm";
    binding.options.max_supersteps = 300;
    binding.message_nonnegative =
        [](const graft::algos::MWMMessage& m, VertexId, VertexId, int64_t) {
          return m.sender >= 0;
        };
    binding.vertex_value_nonnegative =
        [](const graft::algos::MWMVertexValue& v, VertexId, int64_t) {
          return v.matched_to >= -1;
        };
    binding.specified5 = PickIds(graph, 5);
    binding.specified10 = PickIds(graph, 10);
    RunCluster(binding, reps);
  }

  std::printf("csv,cluster,config,normalized,stdev,overhead_seconds,captures,"
              "violations,trace_bytes\n");
  for (const std::string& line : g_csv) std::printf("csv,%s\n", line.c_str());
  std::printf(
      "\npaper shape targets: DC-sp<=~1.16 DC-sp+nbr<=~1.17 "
      "DC-msg/DC-vv<=~1.20 DC-full<=~1.29\n");
  return 0;
}
