// Table 1 — "Graph datasets for demonstration" (§4).
//
// Regenerates the three demo datasets with the synthetic generator families
// and prints the paper-reported sizes next to the generated ones (directed
// and symmetrized), plus degree statistics confirming the family shape
// (heavy-tailed for the web/social graphs, exactly d-regular for the
// bipartite one).
//
// GRAFT_BENCH_SCALE divides the vertex counts (default 8; set 1 for the
// full paper sizes — ~30s of generation on one core).

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "debug/views/text_table.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

int main() {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  uint64_t scale = (env != nullptr && std::atoll(env) > 0)
                       ? static_cast<uint64_t>(std::atoll(env))
                       : 8;
  std::printf("== Table 1: graph datasets for demonstration ==\n");
  std::printf("(generated at scale 1/%llu; GRAFT_BENCH_SCALE=1 for paper "
              "sizes)\n\n",
              static_cast<unsigned long long>(scale));

  graft::debug::TextTable table(
      {"name", "paper V", "paper E(d)", "paper E(u)", "gen V", "gen E(d)",
       "gen E(u)", "max in-deg", "gen time"});
  for (const auto& spec : graft::graph::AllDatasets()) {
    if (!spec.demo_table) continue;
    graft::graph::DatasetOptions options;
    options.scale_denominator = scale;
    graft::Stopwatch clock;
    auto directed = graft::graph::MakeDataset(spec.name, options);
    GRAFT_CHECK(directed.ok()) << directed.status();
    options.undirected = true;
    auto undirected = graft::graph::MakeDataset(spec.name, options);
    GRAFT_CHECK(undirected.ok()) << undirected.status();
    double seconds = clock.ElapsedSeconds();
    auto stats = graft::graph::ComputeGraphStats(*directed);
    table.AddRow({spec.name,
                  graft::WithThousandsSeparators(spec.paper_vertices),
                  graft::WithThousandsSeparators(spec.paper_directed_edges),
                  graft::WithThousandsSeparators(spec.paper_undirected_edges),
                  graft::WithThousandsSeparators(directed->NumVertices()),
                  graft::WithThousandsSeparators(
                      directed->NumDirectedEdges()),
                  graft::WithThousandsSeparators(
                      undirected->NumDirectedEdges()),
                  graft::WithThousandsSeparators(stats.max_in_degree),
                  graft::StrFormat("%.2fs", seconds)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Degree-shape evidence: the web graph must be heavy-tailed, the
  // bipartite graph exactly regular.
  {
    graft::graph::DatasetOptions options;
    options.scale_denominator = scale;
    auto web = graft::graph::MakeDataset("web-BS", options);
    auto stats = graft::graph::ComputeGraphStats(*web);
    std::printf("web-BS in-degree histogram (log2 buckets) — the heavy "
                "tail of a web graph:\n");
    for (size_t b = 0; b < stats.in_degree_histogram.size(); ++b) {
      std::printf("  [%6llu..%6llu): %s\n",
                  static_cast<unsigned long long>(1ULL << b),
                  static_cast<unsigned long long>(1ULL << (b + 1)),
                  graft::WithThousandsSeparators(stats.in_degree_histogram[b])
                      .c_str());
    }
    auto bip = graft::graph::MakeDataset("bipartite-1M-3M", options);
    auto bip_stats = graft::graph::ComputeGraphStats(*bip);
    std::printf("bipartite-1M-3M degrees: min=%llu max=%llu (3-regular: both "
                "3)\n",
                static_cast<unsigned long long>(bip_stats.min_out_degree),
                static_cast<unsigned long long>(bip_stats.max_out_degree));
  }
  return 0;
}
