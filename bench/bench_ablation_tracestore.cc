// Ablation: trace-store write/read throughput (google-benchmark).
//
// Graft's overhead story (§5) depends on trace appends being cheap and
// trace files staying small ("often in the kilobytes"). This bench measures
// the append path for both backends across record sizes, and the read-back
// scan the GUI performs.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "common/logging.h"
#include "io/trace_store.h"

namespace {

std::string MakeRecord(size_t size) { return std::string(size, 'x'); }

void BM_InMemoryAppend(benchmark::State& state) {
  graft::InMemoryTraceStore store;
  std::string record = MakeRecord(static_cast<size_t>(state.range(0)));
  int64_t i = 0;
  for (auto _ : state) {
    GRAFT_CHECK_OK(store.Append("job/superstep_000001/worker_000.vtrace",
                                record));
    ++i;
  }
  state.SetBytesProcessed(i * state.range(0));
}
BENCHMARK(BM_InMemoryAppend)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_LocalDirAppend(benchmark::State& state) {
  std::string dir = "/tmp/graft_bench_store";
  std::filesystem::remove_all(dir);
  auto store = graft::LocalDirTraceStore::Open(dir);
  GRAFT_CHECK(store.ok());
  std::string record = MakeRecord(static_cast<size_t>(state.range(0)));
  int64_t i = 0;
  for (auto _ : state) {
    GRAFT_CHECK_OK(
        (*store)->Append("job/superstep_000001/worker_000.vtrace", record));
    ++i;
  }
  state.SetBytesProcessed(i * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LocalDirAppend)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_InMemoryReadAll(benchmark::State& state) {
  graft::InMemoryTraceStore store;
  std::string record = MakeRecord(256);
  for (int64_t i = 0; i < state.range(0); ++i) {
    GRAFT_CHECK_OK(store.Append("job/superstep_000001/worker_000.vtrace",
                                record));
  }
  for (auto _ : state) {
    auto records = store.ReadAll("job/superstep_000001/worker_000.vtrace");
    GRAFT_CHECK(records.ok());
    benchmark::DoNotOptimize(records->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InMemoryReadAll)->Arg(100)->Arg(10000);

void BM_LocalDirReadAll(benchmark::State& state) {
  std::string dir = "/tmp/graft_bench_store_read";
  std::filesystem::remove_all(dir);
  auto store = graft::LocalDirTraceStore::Open(dir);
  GRAFT_CHECK(store.ok());
  std::string record = MakeRecord(256);
  for (int64_t i = 0; i < state.range(0); ++i) {
    GRAFT_CHECK_OK(
        (*store)->Append("job/superstep_000001/worker_000.vtrace", record));
  }
  GRAFT_CHECK_OK((*store)->Flush());
  for (auto _ : state) {
    auto records =
        (*store)->ReadAll("job/superstep_000001/worker_000.vtrace");
    GRAFT_CHECK(records.ok());
    benchmark::DoNotOptimize(records->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LocalDirReadAll)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
