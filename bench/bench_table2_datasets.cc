// Table 2 — "Graph datasets for performance experiments" (§5).
//
// The paper's graphs (sk-2005: 51M/1.9B, twitter: 42M/1.5B,
// bipartite-2B-6B) do not fit one machine at full size; the registry scales
// them down while preserving family and per-vertex degree (DESIGN.md
// substitutions). This bench materializes each at its benchmark scale and
// prints paper-vs-generated sizes and generation throughput.

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "debug/views/text_table.h"
#include "graph/datasets.h"
#include "graph/graph_stats.h"

int main() {
  const char* env = std::getenv("GRAFT_BENCH_SCALE");
  uint64_t extra = (env != nullptr && std::atoll(env) > 0)
                       ? static_cast<uint64_t>(std::atoll(env))
                       : 1;
  std::printf("== Table 2: graph datasets for performance experiments ==\n\n");

  struct Entry {
    const char* name;
    uint64_t default_denominator;
  };
  const Entry entries[] = {
      {"sk-2005", 1024}, {"twitter", 512}, {"bipartite-2B-6B", 16384}};

  graft::debug::TextTable table({"name", "paper V", "paper E(d/u)", "scale",
                                 "gen V", "gen E(d)", "avg deg",
                                 "gen Medges/s"});
  for (const Entry& entry : entries) {
    auto spec = graft::graph::FindDataset(entry.name);
    GRAFT_CHECK(spec.ok());
    graft::graph::DatasetOptions options;
    options.scale_denominator = entry.default_denominator * extra;
    graft::Stopwatch clock;
    auto graph = graft::graph::MakeDataset(entry.name, options);
    GRAFT_CHECK(graph.ok()) << graph.status();
    double seconds = clock.ElapsedSeconds();
    auto stats = graft::graph::ComputeGraphStats(*graph);
    uint64_t paper_edges = spec->paper_directed_edges != 0
                               ? spec->paper_directed_edges
                               : spec->paper_undirected_edges;
    table.AddRow(
        {entry.name, graft::WithThousandsSeparators(spec->paper_vertices),
         graft::WithThousandsSeparators(paper_edges),
         graft::StrFormat("1/%llu", static_cast<unsigned long long>(
                                        options.scale_denominator)),
         graft::WithThousandsSeparators(stats.num_vertices),
         graft::WithThousandsSeparators(stats.num_directed_edges),
         graft::StrFormat("%.1f", stats.avg_out_degree),
         graft::StrFormat("%.2f", stats.num_directed_edges / seconds / 1e6)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(scale divides vertices; attachment degree is preserved so "
              "per-vertex work matches the paper's shape)\n");
  return 0;
}
